#include "sop/isop.hpp"

namespace chortle::sop {
namespace {

using truth::TruthTable;

/// Minato-Morreale: returns a cover G with lower <= G <= upper, and sets
/// `computed` to the function G actually covers.
Cover isop_rec(const TruthTable& lower, const TruthTable& upper, int var,
               TruthTable* computed) {
  CHORTLE_CHECK(lower.num_vars() == upper.num_vars());
  if (lower.is_zero()) {
    *computed = TruthTable::zeros(lower.num_vars());
    return Cover::zero();
  }
  if (upper.is_one()) {
    *computed = TruthTable::ones(lower.num_vars());
    return Cover::one();
  }
  // Pick the highest variable either bound depends on.
  int x = var;
  while (x >= 0 && !lower.depends_on(x) && !upper.depends_on(x)) --x;
  CHORTLE_CHECK(x >= 0);

  const TruthTable l0 = lower.cofactor0(x), l1 = lower.cofactor1(x);
  const TruthTable u0 = upper.cofactor0(x), u1 = upper.cofactor1(x);

  TruthTable f0, f1, fstar;
  Cover c0 = isop_rec(l0 & ~u1, u0, x - 1, &f0);
  Cover c1 = isop_rec(l1 & ~u0, u1, x - 1, &f1);
  const TruthTable l_rest = (l0 & ~f0) | (l1 & ~f1);
  Cover cstar = isop_rec(l_rest, u0 & u1, x - 1, &fstar);

  const TruthTable xvar = TruthTable::var(x, lower.num_vars());
  *computed = (~xvar & f0) | (xvar & f1) | fstar;

  std::vector<Cube> cubes;
  cubes.reserve(static_cast<std::size_t>(c0.num_cubes()) + c1.num_cubes() +
                cstar.num_cubes());
  const Literal neg = make_literal(x, true);
  const Literal pos = make_literal(x, false);
  for (const Cube& c : c0.cubes()) {
    auto with = c.conjunction(Cube(std::vector<Literal>{neg}));
    CHORTLE_CHECK(with.has_value());
    cubes.push_back(std::move(*with));
  }
  for (const Cube& c : c1.cubes()) {
    auto with = c.conjunction(Cube(std::vector<Literal>{pos}));
    CHORTLE_CHECK(with.has_value());
    cubes.push_back(std::move(*with));
  }
  for (const Cube& c : cstar.cubes()) cubes.push_back(c);
  return Cover(std::move(cubes));
}

}  // namespace

Cover isop(const truth::TruthTable& function) {
  TruthTable computed(function.num_vars());
  Cover result =
      isop_rec(function, function, function.num_vars() - 1, &computed);
  CHORTLE_CHECK(computed == function);
  return result;
}

truth::TruthTable evaluate_local(const Cover& cover, int num_vars) {
  return cover.evaluate(num_vars, [](int var) { return var; });
}

}  // namespace chortle::sop
