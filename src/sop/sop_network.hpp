// A multi-level Boolean network whose internal nodes carry sum-of-products
// covers over their fanin node ids — the representation of a parsed BLIF
// file and the form the technology-independent optimizer works on.
// After optimization it is decomposed into the AND/OR DAG consumed by
// the mappers (see opt/decompose.hpp).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "sop/cover.hpp"

namespace chortle::sop {

class SopNetwork {
 public:
  using NodeId = int;
  static constexpr NodeId kInvalidNode = -1;

  struct Node {
    std::string name;
    bool is_input = false;
    // Cover literals use network node ids as variable ids.
    // For non-input nodes: empty cover == constant 0, a cover containing
    // the empty cube == constant 1.
    Cover cover;
  };

  /// Adds a primary input. Names must be unique across the network.
  NodeId add_input(const std::string& name);
  /// Adds an internal node computing `cover` over existing node ids.
  NodeId add_node(const std::string& name, Cover cover);
  /// Replaces the cover of an internal node.
  void set_cover(NodeId id, Cover cover);
  /// Marks a node as a primary output (may be listed once only).
  void mark_output(NodeId id);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  bool is_input(NodeId id) const { return node(id).is_input; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  bool is_output(NodeId id) const;

  /// Node id by name; kInvalidNode if absent.
  NodeId find(const std::string& name) const;

  /// Fanin node ids of a node (support of its cover), ascending.
  std::vector<NodeId> fanins(NodeId id) const;
  /// Number of internal nodes each node feeds.
  std::vector<int> fanout_counts() const;

  /// Internal nodes in topological order (fanins before fanouts).
  /// Throws InvalidInput if the network has a combinational cycle.
  std::vector<NodeId> topological_order() const;

  /// Total literal occurrences over all internal nodes (MIS cost metric).
  int total_literals() const;

  /// A copy without dead nodes (unreachable from any output); node ids
  /// are re-assigned, names preserved.
  SopNetwork pruned() const;

  /// Structural sanity: fanins exist, no self-loops, acyclic, unique
  /// names, outputs valid. Throws on violation.
  void check() const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace chortle::sop
