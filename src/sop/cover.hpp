// A cover (sum of products): a disjunction of cubes. The empty cover is
// the constant 0; a cover containing the empty cube is the constant 1
// (after minimization). Provides the algebraic-model operations used by
// logic optimization: single-cube containment minimization, cofactoring,
// weak (algebraic) division, and evaluation to a truth table.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sop/cube.hpp"
#include "truth/truth_table.hpp"

namespace chortle::sop {

class Cover {
 public:
  Cover() = default;
  explicit Cover(std::vector<Cube> cubes) : cubes_(std::move(cubes)) {}

  static Cover zero() { return Cover(); }
  static Cover one() { return Cover({Cube::one()}); }

  bool is_zero() const { return cubes_.empty(); }
  bool is_one() const;
  int num_cubes() const { return static_cast<int>(cubes_.size()); }
  const std::vector<Cube>& cubes() const { return cubes_; }
  const Cube& cube(int i) const { return cubes_[static_cast<std::size_t>(i)]; }

  void add_cube(Cube cube) { cubes_.push_back(std::move(cube)); }

  /// Total number of literal occurrences (the cost MIS minimizes).
  int literal_count() const;

  /// Sorted list of variable ids appearing in any cube.
  std::vector<int> support() const;

  /// Number of occurrences of `lit` across cubes.
  int literal_occurrences(Literal lit) const;

  /// Remove duplicate cubes and cubes contained in another cube
  /// (single-cube containment); canonicalizes cube order.
  Cover scc_minimized() const;

  /// Algebraic cofactor: { c without lit | c in cubes, lit in c }.
  Cover cofactor(Literal lit) const;

  /// Largest cube dividing every cube of the cover (empty cube if the
  /// cover is cube-free or has fewer than one cube).
  Cube common_cube() const;

  /// The cover divided by its common cube (a cube-free cover when the
  /// cover has >= 2 cubes).
  Cover made_cube_free() const;

  /// Weak (algebraic) division by a divisor cover:
  /// returns (quotient Q, remainder R) with this = Q*D + R, Q maximal.
  std::pair<Cover, Cover> divide(const Cover& divisor) const;

  /// Division by a single cube.
  std::pair<Cover, Cover> divide_by_cube(const Cube& divisor) const;

  /// OR of two covers (no minimization).
  Cover disjunction(const Cover& other) const;

  /// Product of two covers in the algebraic model (cross product of
  /// cubes; contradictory products dropped).
  Cover conjunction(const Cover& other) const;

  /// Substitute variable `var` by literal-preserving divisor reference:
  /// rewrites each cube containing `var` literal accordingly. (Used by
  /// extraction: replaces occurrences of divisor D with new variable v.)
  /// Exposed as the primitive: replace cubes Q*D in this cover by Q*v.
  Cover with_divisor_replaced(const Cover& divisor, int new_var) const;

  /// Evaluate to a truth table. `var_index` maps a variable id to a
  /// truth-table input slot; all variables in the support must be mapped.
  truth::TruthTable evaluate(
      int num_table_vars,
      const std::function<int(int)>& var_index) const;

  bool operator==(const Cover& other) const { return cubes_ == other.cubes_; }
  bool operator!=(const Cover& other) const { return !(*this == other); }

 private:
  std::vector<Cube> cubes_;
};

}  // namespace chortle::sop
