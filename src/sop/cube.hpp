// A cube (product term): a conjunction of literals stored as a sorted,
// duplicate-free vector. The empty cube is the constant 1.
#pragma once

#include <optional>
#include <vector>

#include "sop/literal.hpp"

namespace chortle::sop {

class Cube {
 public:
  Cube() = default;
  /// Builds a cube from literals in any order; duplicates are merged.
  /// Requires the literal set to be non-contradictory (no x and !x).
  explicit Cube(std::vector<Literal> literals);

  static Cube one() { return Cube(); }

  bool is_one() const { return literals_.empty(); }
  int size() const { return static_cast<int>(literals_.size()); }
  const std::vector<Literal>& literals() const { return literals_; }

  bool has_literal(Literal lit) const;
  bool has_var(int var) const;

  /// Set-inclusion: every literal of `other` appears in this cube.
  /// (As products: this implies other.)
  bool contains_all_of(const Cube& other) const;

  /// Conjunction; nullopt if the result is contradictory (constant 0).
  std::optional<Cube> conjunction(const Cube& other) const;

  /// Literal-set intersection (the largest common cube divisor).
  Cube common_with(const Cube& other) const;

  /// This cube with the literals of `divisor` removed; requires that
  /// this cube contains all literals of `divisor` (algebraic quotient).
  Cube without(const Cube& divisor) const;

  /// This cube with one literal removed (no-op if absent).
  Cube without_literal(Literal lit) const;

  bool operator==(const Cube& other) const {
    return literals_ == other.literals_;
  }
  bool operator!=(const Cube& other) const { return !(*this == other); }
  bool operator<(const Cube& other) const;  // lexicographic, for sorting

 private:
  std::vector<Literal> literals_;  // sorted ascending, unique
};

}  // namespace chortle::sop
