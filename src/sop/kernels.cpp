#include "sop/kernels.hpp"

#include <algorithm>
#include <set>

namespace chortle::sop {
namespace {

/// All literals occurring in at least `min_count` cubes, ascending.
std::vector<Literal> frequent_literals(const Cover& cover, int min_count) {
  std::set<Literal> all;
  for (const Cube& c : cover.cubes())
    for (Literal lit : c.literals()) all.insert(lit);
  std::vector<Literal> result;
  for (Literal lit : all)
    if (cover.literal_occurrences(lit) >= min_count) result.push_back(lit);
  return result;
}

class KernelFinder {
 public:
  std::vector<KernelEntry> run(const Cover& raw) {
    const Cover cover = raw.scc_minimized();
    const Cube common = cover.common_cube();
    const Cover cube_free = cover.made_cube_free();
    if (cube_free.num_cubes() >= 2) add(cube_free, common);
    recurse(cube_free, common, /*min_literal=*/-1);
    return std::move(entries_);
  }

 private:
  void recurse(const Cover& cover, const Cube& co_kernel, Literal min_literal) {
    for (Literal lit : frequent_literals(cover, 2)) {
      if (lit <= min_literal) continue;
      const Cover quotient = cover.cofactor(lit).scc_minimized();
      const Cube extra = quotient.common_cube();
      // Pruning rule: if the common cube of the quotient contains a
      // literal smaller than `lit`, this kernel was (or will be) found
      // through that literal already.
      const bool already_seen = std::any_of(
          extra.literals().begin(), extra.literals().end(),
          [&](Literal other) { return other < lit; });
      if (already_seen) continue;
      const Cover kernel = quotient.made_cube_free();
      auto full_co = co_kernel.conjunction(
          Cube(std::vector<Literal>{lit}));
      CHORTLE_CHECK(full_co.has_value());
      auto deeper_co = full_co->conjunction(extra);
      CHORTLE_CHECK(deeper_co.has_value());
      if (kernel.num_cubes() >= 2) add(kernel, *deeper_co);
      recurse(kernel, *deeper_co, lit);
    }
  }

  void add(const Cover& kernel, const Cube& co_kernel) {
    const Cover canonical = kernel.scc_minimized();
    if (!seen_.insert(canonical.cubes()).second) return;
    entries_.push_back({canonical, co_kernel});
  }

  std::set<std::vector<Cube>> seen_;
  std::vector<KernelEntry> entries_;
};

}  // namespace

std::vector<KernelEntry> find_kernels(const Cover& cover) {
  return KernelFinder().run(cover);
}

bool is_level0_kernel(const Cover& kernel) {
  for (const Cube& c : kernel.cubes())
    for (Literal lit : c.literals())
      if (kernel.literal_occurrences(lit) >= 2) return false;
  return true;
}

std::vector<KernelEntry> find_level0_kernels(const Cover& cover) {
  std::vector<KernelEntry> all = find_kernels(cover);
  std::vector<KernelEntry> level0;
  for (auto& entry : all)
    if (is_level0_kernel(entry.kernel)) level0.push_back(std::move(entry));
  return level0;
}

}  // namespace chortle::sop
