#include "sim/simulate.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "base/rng.hpp"

namespace chortle::sim {
namespace {

std::vector<Word> eval_sop(const sop::SopNetwork& network,
                           const std::vector<Word>& input_words) {
  CHORTLE_REQUIRE(input_words.size() == network.inputs().size(),
                  "input word count mismatch");
  std::vector<Word> value(static_cast<std::size_t>(network.num_nodes()), 0);
  for (std::size_t i = 0; i < network.inputs().size(); ++i)
    value[static_cast<std::size_t>(network.inputs()[i])] = input_words[i];
  for (sop::SopNetwork::NodeId id : network.topological_order()) {
    Word acc = 0;
    for (const sop::Cube& cube : network.node(id).cover.cubes()) {
      Word term = ~Word{0};
      for (sop::Literal lit : cube.literals()) {
        const Word v = value[static_cast<std::size_t>(sop::literal_var(lit))];
        term &= sop::literal_negated(lit) ? ~v : v;
      }
      acc |= term;
    }
    value[static_cast<std::size_t>(id)] = acc;
  }
  std::vector<Word> out;
  out.reserve(network.outputs().size());
  for (sop::SopNetwork::NodeId id : network.outputs())
    out.push_back(value[static_cast<std::size_t>(id)]);
  return out;
}

std::vector<Word> eval_network(const net::Network& network,
                               const std::vector<Word>& input_words) {
  CHORTLE_REQUIRE(static_cast<int>(input_words.size()) ==
                      network.num_inputs(),
                  "input word count mismatch");
  std::vector<Word> value(static_cast<std::size_t>(network.num_nodes()), 0);
  for (int i = 0; i < network.num_inputs(); ++i)
    value[static_cast<std::size_t>(network.inputs()[i])] =
        input_words[static_cast<std::size_t>(i)];
  for (net::NodeId id : network.gates_in_topo_order()) {
    const auto& node = network.node(id);
    const bool is_and = node.op == net::GateOp::kAnd;
    Word acc = is_and ? ~Word{0} : Word{0};
    for (const net::Fanin& f : node.fanins) {
      Word v = value[static_cast<std::size_t>(f.node)];
      if (f.negated) v = ~v;
      acc = is_and ? (acc & v) : (acc | v);
    }
    value[static_cast<std::size_t>(id)] = acc;
  }
  std::vector<Word> out;
  out.reserve(network.outputs().size());
  for (const net::Output& o : network.outputs()) {
    if (o.is_const) {
      out.push_back(o.const_value ? ~Word{0} : Word{0});
    } else {
      const Word v = value[static_cast<std::size_t>(o.node)];
      out.push_back(o.negated ? ~v : v);
    }
  }
  return out;
}

std::vector<Word> eval_luts(const net::LutCircuit& circuit,
                            const std::vector<Word>& input_words) {
  CHORTLE_REQUIRE(static_cast<int>(input_words.size()) ==
                      circuit.num_inputs(),
                  "input word count mismatch");
  std::vector<Word> value(static_cast<std::size_t>(circuit.num_signals()), 0);
  std::copy(input_words.begin(), input_words.end(), value.begin());
  for (int i = 0; i < circuit.num_luts(); ++i) {
    const net::Lut& lut = circuit.luts()[static_cast<std::size_t>(i)];
    // Shannon-style evaluation: OR over ON-set minterms of the AND of
    // (possibly complemented) input words. For k <= 6 this is at most
    // 64 terms and is branch-free per lane.
    Word acc = 0;
    const std::uint64_t minterms = lut.function.num_minterms();
    for (std::uint64_t m = 0; m < minterms; ++m) {
      if (!lut.function.bit(m)) continue;
      Word term = ~Word{0};
      for (std::size_t j = 0; j < lut.inputs.size(); ++j) {
        const Word v = value[static_cast<std::size_t>(lut.inputs[j])];
        term &= ((m >> j) & 1) ? v : ~v;
      }
      acc |= term;
    }
    value[static_cast<std::size_t>(circuit.num_inputs() + i)] = acc;
  }
  std::vector<Word> out;
  out.reserve(circuit.outputs().size());
  for (const net::LutOutput& o : circuit.outputs()) {
    if (o.is_const) {
      out.push_back(o.const_value ? ~Word{0} : Word{0});
    } else {
      const Word v = value[static_cast<std::size_t>(o.signal)];
      out.push_back(o.negated ? ~v : v);
    }
  }
  return out;
}

}  // namespace

Design design_of(const sop::SopNetwork& network) {
  Design d;
  for (sop::SopNetwork::NodeId id : network.inputs())
    d.input_names.push_back(network.node(id).name);
  for (sop::SopNetwork::NodeId id : network.outputs())
    d.output_names.push_back(network.node(id).name);
  d.eval = [&network](const std::vector<Word>& in) {
    return eval_sop(network, in);
  };
  return d;
}

Design design_of(const net::Network& network) {
  Design d;
  for (net::NodeId id : network.inputs())
    d.input_names.push_back(network.node(id).name);
  for (const net::Output& o : network.outputs()) d.output_names.push_back(o.name);
  d.eval = [&network](const std::vector<Word>& in) {
    return eval_network(network, in);
  };
  return d;
}

Design design_of(const net::LutCircuit& circuit) {
  Design d;
  d.input_names = circuit.input_names();
  for (const net::LutOutput& o : circuit.outputs())
    d.output_names.push_back(o.name);
  d.eval = [&circuit](const std::vector<Word>& in) {
    return eval_luts(circuit, in);
  };
  return d;
}

namespace {

/// Maps each name in `from` to its position in `to`; throws if the name
/// sets differ.
std::vector<std::size_t> align(const std::vector<std::string>& from,
                               const std::vector<std::string>& to,
                               const char* what) {
  CHORTLE_REQUIRE(from.size() == to.size(),
                  std::string(what) + " count mismatch between designs");
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < to.size(); ++i) index.emplace(to[i], i);
  std::vector<std::size_t> result(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    auto it = index.find(from[i]);
    CHORTLE_REQUIRE(it != index.end(),
                    std::string(what) + " '" + from[i] +
                        "' missing from second design");
    result[i] = it->second;
  }
  return result;
}

std::optional<Mismatch> compare_words(const Design& a,
                                      const std::vector<Word>& inputs_a,
                                      const std::vector<Word>& out_a,
                                      const std::vector<Word>& out_b,
                                      const std::vector<std::size_t>& out_map,
                                      int valid_lanes) {
  const Word lane_mask = valid_lanes >= 64
                             ? ~Word{0}
                             : ((Word{1} << valid_lanes) - 1);
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    const Word diff = (out_a[i] ^ out_b[out_map[i]]) & lane_mask;
    if (diff == 0) continue;
    const int lane = std::countr_zero(diff);
    Mismatch m;
    m.output_name = a.output_names[i];
    for (const Word w : inputs_a) m.input_values.push_back((w >> lane) & 1);
    return m;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Mismatch> find_mismatch(const Design& a, const Design& b,
                                      const EquivalenceOptions& options) {
  const auto in_map = align(a.input_names, b.input_names, "input");
  const auto out_map = align(a.output_names, b.output_names, "output");
  const std::size_t num_in = a.input_names.size();

  const auto run = [&](const std::vector<Word>& in_a,
                       int valid_lanes) -> std::optional<Mismatch> {
    std::vector<Word> in_b(num_in);
    for (std::size_t i = 0; i < num_in; ++i) in_b[in_map[i]] = in_a[i];
    const std::vector<Word> out_a = a.eval(in_a);
    const std::vector<Word> out_b = b.eval(in_b);
    CHORTLE_CHECK(out_a.size() == a.output_names.size());
    CHORTLE_CHECK(out_b.size() == b.output_names.size());
    return compare_words(a, in_a, out_a, out_b, out_map, valid_lanes);
  };

  if (static_cast<int>(num_in) <= options.exhaustive_limit) {
    const std::uint64_t total = std::uint64_t{1} << num_in;
    for (std::uint64_t base = 0; base < total; base += 64) {
      const int lanes = static_cast<int>(std::min<std::uint64_t>(64, total - base));
      std::vector<Word> in(num_in, 0);
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t pattern = base + static_cast<std::uint64_t>(lane);
        for (std::size_t i = 0; i < num_in; ++i)
          if ((pattern >> i) & 1) in[i] |= Word{1} << lane;
      }
      if (auto m = run(in, lanes)) return m;
    }
    return std::nullopt;
  }

  Rng rng(options.seed);
  for (int round = 0; round < options.random_words; ++round) {
    std::vector<Word> in(num_in);
    for (auto& w : in) w = rng.next_u64();
    if (auto m = run(in, 64)) return m;
  }
  return std::nullopt;
}

bool equivalent(const Design& a, const Design& b,
                const EquivalenceOptions& options) {
  return !find_mismatch(a, b, options).has_value();
}

}  // namespace chortle::sim
