// Bit-parallel (64 patterns per word) simulation of each network form in
// the pipeline, plus equivalence checking between any two of them.
// Every mapped circuit in tests and benches is verified against the
// network it was mapped from: random patterns always, and exhaustively
// when the input count permits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "network/lut_circuit.hpp"
#include "network/network.hpp"
#include "sop/sop_network.hpp"

namespace chortle::sim {

using Word = std::uint64_t;

/// A uniform view of a simulatable design: named inputs and outputs and
/// a word-parallel evaluation function (one word of 64 patterns per
/// input, returning one word per output, in interface order).
struct Design {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::function<std::vector<Word>(const std::vector<Word>&)> eval;
};

Design design_of(const sop::SopNetwork& network);
Design design_of(const net::Network& network);
Design design_of(const net::LutCircuit& circuit);

/// A concrete input assignment on which two designs disagree.
struct Mismatch {
  std::string output_name;
  std::vector<bool> input_values;  // aligned with design a's input order
};

struct EquivalenceOptions {
  int random_words = 64;     // 64*64 = 4096 random patterns by default
  std::uint64_t seed = 1;
  int exhaustive_limit = 14; // exhaustive when #inputs <= this
};

/// Checks functional equivalence of two designs with identical interface
/// name sets (order may differ). Returns nullopt when no mismatch was
/// found; otherwise a witness. Throws InvalidInput if the interfaces
/// do not match by name.
std::optional<Mismatch> find_mismatch(const Design& a, const Design& b,
                                      const EquivalenceOptions& options = {});

/// Convenience: true when no mismatch was found.
bool equivalent(const Design& a, const Design& b,
                const EquivalenceOptions& options = {});

}  // namespace chortle::sim
