#include "flowmap/flowmap.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "base/check.hpp"
#include "base/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chortle::flowmap {
namespace {

constexpr int kInf = 1 << 28;

/// Small unit-capacity max-flow (Edmonds-Karp); augmentation stops as
/// soon as the flow exceeds `limit`, which is all the feasibility test
/// needs.
class FlowGraph {
 public:
  explicit FlowGraph(int num_nodes) : head_(num_nodes, -1) {}

  void add_edge(int from, int to, int capacity) {
    edges_.push_back({to, head_[static_cast<std::size_t>(from)], capacity});
    head_[static_cast<std::size_t>(from)] =
        static_cast<int>(edges_.size()) - 1;
    edges_.push_back({from, head_[static_cast<std::size_t>(to)], 0});
    head_[static_cast<std::size_t>(to)] = static_cast<int>(edges_.size()) - 1;
  }

  /// Max flow from s to t, capped at limit+1.
  int max_flow(int s, int t, int limit) {
    int flow = 0;
    while (flow <= limit && augment(s, t)) ++flow;
    return flow;
  }

  /// Nodes reachable from s in the residual graph (after max_flow).
  std::vector<bool> residual_reachable(int s) const {
    std::vector<bool> seen(head_.size(), false);
    std::vector<int> stack{s};
    seen[static_cast<std::size_t>(s)] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int e = head_[static_cast<std::size_t>(v)]; e != -1;
           e = edges_[static_cast<std::size_t>(e)].next) {
        const Edge& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.capacity > 0 && !seen[static_cast<std::size_t>(edge.to)]) {
          seen[static_cast<std::size_t>(edge.to)] = true;
          stack.push_back(edge.to);
        }
      }
    }
    return seen;
  }

 private:
  struct Edge {
    int to;
    int next;
    int capacity;
  };

  bool augment(int s, int t) {
    std::vector<int> parent_edge(head_.size(), -1);
    std::vector<bool> seen(head_.size(), false);
    std::queue<int> queue;
    queue.push(s);
    seen[static_cast<std::size_t>(s)] = true;
    while (!queue.empty() && !seen[static_cast<std::size_t>(t)]) {
      const int v = queue.front();
      queue.pop();
      for (int e = head_[static_cast<std::size_t>(v)]; e != -1;
           e = edges_[static_cast<std::size_t>(e)].next) {
        const Edge& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.capacity <= 0 || seen[static_cast<std::size_t>(edge.to)])
          continue;
        seen[static_cast<std::size_t>(edge.to)] = true;
        parent_edge[static_cast<std::size_t>(edge.to)] = e;
        queue.push(edge.to);
      }
    }
    if (!seen[static_cast<std::size_t>(t)]) return false;
    // Unit augmentation along the path.
    for (int v = t; v != s;) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      edges_[static_cast<std::size_t>(e)].capacity -= 1;
      edges_[static_cast<std::size_t>(e ^ 1)].capacity += 1;
      v = edges_[static_cast<std::size_t>(e ^ 1)].to;
    }
    return true;
  }

  std::vector<int> head_;
  std::vector<Edge> edges_;
};

class FlowMapper {
 public:
  FlowMapper(const net::Network& network, int k)
      : network_(network), k_(k) {
    CHORTLE_REQUIRE(k >= 2 && k <= truth::TruthTable::kMaxVars,
                    "LUT size out of range");
    if (const auto violation = validate_k_bounded(network, k))
      throw InvalidInput(violation->message());
  }

  FlowMapResult run() {
    OBS_SPAN_ARG("flowmap.map", network_.num_nodes());
    WallTimer timer;
    compute_labels();

    FlowMapResult result{net::LutCircuit(k_), FlowMapStats{}};
    emit(result.circuit);
    result.stats.num_luts = result.circuit.num_luts();
    result.stats.depth = result.circuit.depth();
    result.stats.seconds = timer.seconds();
    OBS_COUNT("flowmap.networks", 1);
    OBS_COUNT("flowmap.labels", labels_computed_);
    OBS_COUNT("flowmap.maxflow_runs", maxflow_runs_);
    OBS_COUNT("flowmap.luts", result.stats.num_luts);
    return result;
  }

  /// The labeling phase alone, for callers that only need the optimal
  /// depth bound and the per-node optimal cuts (cutmap's cross-check).
  DepthLabels labels() {
    OBS_SPAN_ARG("flowmap.labels", network_.num_nodes());
    compute_labels();
    DepthLabels out;
    out.label = label_;
    out.cut_of = cut_of_;
    for (const net::Output& o : network_.outputs())
      if (!o.is_const)
        out.depth =
            std::max(out.depth, label_[static_cast<std::size_t>(o.node)]);
    OBS_COUNT("flowmap.label_runs", 1);
    OBS_COUNT("flowmap.labels", labels_computed_);
    OBS_COUNT("flowmap.maxflow_runs", maxflow_runs_);
    return out;
  }

 private:
  void compute_labels() {
    label_.assign(static_cast<std::size_t>(network_.num_nodes()), 0);
    cut_of_.assign(static_cast<std::size_t>(network_.num_nodes()),
                   std::vector<net::NodeId>());
    for (net::NodeId gate : network_.gates_in_topo_order()) label_node(gate);
  }

  /// All nodes in the input cone of `t` (including `t` and PIs).
  std::vector<net::NodeId> cone_of(net::NodeId t) const {
    std::vector<net::NodeId> cone;
    std::vector<bool> seen(static_cast<std::size_t>(network_.num_nodes()),
                           false);
    std::vector<net::NodeId> stack{t};
    seen[static_cast<std::size_t>(t)] = true;
    while (!stack.empty()) {
      const net::NodeId v = stack.back();
      stack.pop_back();
      cone.push_back(v);
      for (const net::Fanin& f : network_.node(v).fanins)
        if (!seen[static_cast<std::size_t>(f.node)]) {
          seen[static_cast<std::size_t>(f.node)] = true;
          stack.push_back(f.node);
        }
    }
    return cone;
  }

  void label_node(net::NodeId t) {
    int p = 0;
    for (const net::Fanin& f : network_.node(t).fanins)
      p = std::max(p, label_[static_cast<std::size_t>(f.node)]);

    const std::vector<net::NodeId> cone = cone_of(t);
    // Collapse t with every cone node of label p; test for a cut <= K.
    std::vector<int> in_index(static_cast<std::size_t>(network_.num_nodes()),
                              -1);
    int next = 2;  // 0 = source, 1 = sink
    std::vector<net::NodeId> split_nodes;
    for (net::NodeId v : cone) {
      const bool collapsed = v == t || label_[static_cast<std::size_t>(v)] == p;
      if (collapsed) {
        in_index[static_cast<std::size_t>(v)] = 1;  // merged into the sink
      } else {
        in_index[static_cast<std::size_t>(v)] = next;
        next += 2;  // v_in, v_out
        split_nodes.push_back(v);
      }
    }
    FlowGraph graph(next);
    for (net::NodeId v : split_nodes)
      graph.add_edge(in_index[static_cast<std::size_t>(v)],
                     in_index[static_cast<std::size_t>(v)] + 1, 1);
    for (net::NodeId v : cone) {
      const int v_in = in_index[static_cast<std::size_t>(v)];
      if (network_.is_input(v)) {
        graph.add_edge(0, v_in, kInf);
        continue;
      }
      for (const net::Fanin& f : network_.node(v).fanins) {
        const int u_in = in_index[static_cast<std::size_t>(f.node)];
        if (u_in == 1) continue;  // edge out of the sink set: irrelevant
        const int u_out = u_in + 1;
        graph.add_edge(u_out, v_in, kInf);
      }
    }

    ++labels_computed_;
    ++maxflow_runs_;
    const int flow = graph.max_flow(0, 1, k_);
    if (flow <= k_) {
      label_[static_cast<std::size_t>(t)] = std::max(p, 1);
      const std::vector<bool> reachable = graph.residual_reachable(0);
      std::vector<net::NodeId> cut;
      for (net::NodeId v : split_nodes) {
        const int v_in = in_index[static_cast<std::size_t>(v)];
        if (reachable[static_cast<std::size_t>(v_in)] &&
            !reachable[static_cast<std::size_t>(v_in) + 1])
          cut.push_back(v);
      }
      CHORTLE_CHECK(static_cast<int>(cut.size()) == flow);
      cut_of_[static_cast<std::size_t>(t)] = std::move(cut);
    } else {
      label_[static_cast<std::size_t>(t)] = p + 1;
      std::vector<net::NodeId> cut;
      for (const net::Fanin& f : network_.node(t).fanins)
        cut.push_back(f.node);
      cut_of_[static_cast<std::size_t>(t)] = std::move(cut);
    }
  }

  /// Cone function of `t` over the recorded cut (variable i = cut[i]).
  truth::TruthTable cut_function(net::NodeId t) const {
    const std::vector<net::NodeId>& cut =
        cut_of_[static_cast<std::size_t>(t)];
    const int arity = static_cast<int>(cut.size());
    std::vector<net::NodeId> interior;  // nodes strictly inside the cone
    std::vector<bool> seen(static_cast<std::size_t>(network_.num_nodes()),
                           false);
    for (net::NodeId v : cut) seen[static_cast<std::size_t>(v)] = true;
    std::vector<net::NodeId> stack{t};
    if (!seen[static_cast<std::size_t>(t)]) {
      seen[static_cast<std::size_t>(t)] = true;
      interior.push_back(t);
    }
    while (!stack.empty()) {
      const net::NodeId v = stack.back();
      stack.pop_back();
      if (std::find(cut.begin(), cut.end(), v) != cut.end()) continue;
      for (const net::Fanin& f : network_.node(v).fanins)
        if (!seen[static_cast<std::size_t>(f.node)]) {
          seen[static_cast<std::size_t>(f.node)] = true;
          interior.push_back(f.node);
          stack.push_back(f.node);
        }
    }
    std::sort(interior.begin(), interior.end());
    std::vector<truth::TruthTable> value(
        static_cast<std::size_t>(network_.num_nodes()),
        truth::TruthTable(arity));
    for (int i = 0; i < arity; ++i)
      value[static_cast<std::size_t>(cut[static_cast<std::size_t>(i)])] =
          truth::TruthTable::var(i, arity);
    for (net::NodeId v : interior) {
      const auto& node = network_.node(v);
      CHORTLE_CHECK_MSG(!network_.is_input(v),
                        "cone interior reached a primary input; bad cut");
      const bool is_and = node.op == net::GateOp::kAnd;
      truth::TruthTable acc = is_and ? truth::TruthTable::ones(arity)
                                     : truth::TruthTable::zeros(arity);
      for (const net::Fanin& f : node.fanins) {
        truth::TruthTable fv = value[static_cast<std::size_t>(f.node)];
        if (f.negated) fv = ~fv;
        if (is_and)
          acc &= fv;
        else
          acc |= fv;
      }
      value[static_cast<std::size_t>(v)] = std::move(acc);
    }
    return value[static_cast<std::size_t>(t)];
  }

  void emit(net::LutCircuit& circuit) {
    std::vector<net::SignalId> signal_of(
        static_cast<std::size_t>(network_.num_nodes()), -1);
    for (net::NodeId pi : network_.inputs())
      signal_of[static_cast<std::size_t>(pi)] =
          circuit.add_input(network_.node(pi).name);

    // Needed gates: transitive closure of outputs through cuts.
    std::vector<bool> needed(static_cast<std::size_t>(network_.num_nodes()),
                             false);
    std::vector<net::NodeId> worklist;
    for (const net::Output& o : network_.outputs())
      if (!o.is_const && !network_.is_input(o.node) &&
          !needed[static_cast<std::size_t>(o.node)]) {
        needed[static_cast<std::size_t>(o.node)] = true;
        worklist.push_back(o.node);
      }
    while (!worklist.empty()) {
      const net::NodeId t = worklist.back();
      worklist.pop_back();
      for (net::NodeId v : cut_of_[static_cast<std::size_t>(t)])
        if (!network_.is_input(v) && !needed[static_cast<std::size_t>(v)]) {
          needed[static_cast<std::size_t>(v)] = true;
          worklist.push_back(v);
        }
    }
    // Cut nodes precede their users in id order, so ascending emission
    // always finds its inputs ready.
    for (net::NodeId t = 0; t < network_.num_nodes(); ++t) {
      if (!needed[static_cast<std::size_t>(t)]) continue;
      net::Lut lut;
      lut.name = network_.node(t).name;
      for (net::NodeId v : cut_of_[static_cast<std::size_t>(t)]) {
        const net::SignalId sig = signal_of[static_cast<std::size_t>(v)];
        CHORTLE_CHECK(sig >= 0);
        lut.inputs.push_back(sig);
      }
      lut.function = cut_function(t);
      signal_of[static_cast<std::size_t>(t)] = circuit.add_lut(std::move(lut));
    }
    for (const net::Output& o : network_.outputs()) {
      if (o.is_const) {
        circuit.add_const_output(o.name, o.const_value);
        continue;
      }
      circuit.add_output(o.name, signal_of[static_cast<std::size_t>(o.node)],
                         o.negated);
    }
    circuit.check();
  }

  const net::Network& network_;
  int k_;
  std::vector<int> label_;
  std::vector<std::vector<net::NodeId>> cut_of_;
  // Flushed to the observability registry once per run().
  std::uint64_t labels_computed_ = 0;
  std::uint64_t maxflow_runs_ = 0;
};

}  // namespace

std::string KBoundViolation::message() const {
  std::string msg = "flowmap: input is not K-bounded: gate ";
  msg += std::to_string(node);
  if (!node_name.empty()) {
    msg += " ('";
    msg += node_name;
    msg += "')";
  }
  msg += " has fanin ";
  msg += std::to_string(fanin);
  msg += " > K=";
  msg += std::to_string(k);
  return msg;
}

std::optional<KBoundViolation> validate_k_bounded(const net::Network& network,
                                                  int k) {
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
    if (network.is_input(v)) continue;
    const auto& node = network.node(v);
    const int fanin = static_cast<int>(node.fanins.size());
    if (fanin > k) {
      KBoundViolation violation;
      violation.node = v;
      violation.node_name = node.name;
      violation.fanin = fanin;
      violation.k = k;
      return violation;
    }
  }
  return std::nullopt;
}

DepthLabels flowmap_labels(const net::Network& network, int k) {
  return FlowMapper(network, k).labels();
}

FlowMapResult flowmap(const net::Network& network, int k) {
  return FlowMapper(network, k).run();
}

}  // namespace chortle::flowmap
