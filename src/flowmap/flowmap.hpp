// FlowMap-style depth-optimal LUT mapping (Cong & Ding, 1994) — built
// here as the "future work" extension the paper closes with: handling
// reconvergent fanout by mapping across the whole DAG instead of
// fanout-free trees, optimizing depth instead of area.
//
// Algorithm: process gates in topological order; the label of a gate is
// the minimum, over K-feasible cuts of its input cone, of (max label in
// the cut) + 1. Cong & Ding's theorem reduces the minimization to one
// max-flow feasibility test: collapse the gate with every cone node of
// maximal fanin label and ask whether a cut of capacity <= K separates
// it from the inputs (unit node capacities). The mapping phase then
// walks the recorded cuts from the outputs.
//
// The input must be K-bounded; callers typically pass the 2-input
// subject graph (libmap/subject.hpp) built from the mapper input.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "network/lut_circuit.hpp"
#include "network/network.hpp"

namespace chortle::flowmap {

struct FlowMapStats {
  int num_luts = 0;
  int depth = 0;        // optimal LUT depth of the K-bounded input
  double seconds = 0.0;
};

struct FlowMapResult {
  net::LutCircuit circuit;
  FlowMapStats stats;
};

/// The structured error for an input that is not K-bounded: which gate
/// violates the bound and by how much. flowmap() raises it as an
/// InvalidInput carrying message(); callers that want to recover (the
/// mapping service, the IMapper facade) pre-check with
/// validate_k_bounded() instead of parsing exception text.
struct KBoundViolation {
  net::NodeId node = net::kInvalidNode;
  std::string node_name;  // may be empty for unnamed gates
  int fanin = 0;
  int k = 0;

  std::string message() const;
};

/// Scans every gate up front; nullopt when the network is K-bounded
/// (every gate fanin <= k). Reports the first offending gate in id
/// order otherwise.
std::optional<KBoundViolation> validate_k_bounded(const net::Network& network,
                                                  int k);

/// Per-node depth labels from the FlowMap labeling phase alone:
/// label[v] is the optimal LUT depth of v over every K-feasible mapping
/// of the input (0 for primary inputs), cut_of[v] one depth-optimal
/// K-cut achieving it (empty for PIs), and depth the maximum label over
/// non-constant primary-output drivers — the provably minimum depth of
/// any K-LUT cover. cutmap uses this as its exactness cross-check and
/// repair source.
struct DepthLabels {
  std::vector<int> label;
  std::vector<std::vector<net::NodeId>> cut_of;
  int depth = 0;
};

/// Runs only the labeling phase (no circuit emission).
DepthLabels flowmap_labels(const net::Network& network, int k);

/// Depth-optimal mapping of a K-bounded network into K-input LUTs.
/// Every gate's fanin count must be at most k; violations raise
/// InvalidInput with KBoundViolation::message() (see validate_k_bounded).
FlowMapResult flowmap(const net::Network& network, int k);

}  // namespace chortle::flowmap
