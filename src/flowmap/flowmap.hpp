// FlowMap-style depth-optimal LUT mapping (Cong & Ding, 1994) — built
// here as the "future work" extension the paper closes with: handling
// reconvergent fanout by mapping across the whole DAG instead of
// fanout-free trees, optimizing depth instead of area.
//
// Algorithm: process gates in topological order; the label of a gate is
// the minimum, over K-feasible cuts of its input cone, of (max label in
// the cut) + 1. Cong & Ding's theorem reduces the minimization to one
// max-flow feasibility test: collapse the gate with every cone node of
// maximal fanin label and ask whether a cut of capacity <= K separates
// it from the inputs (unit node capacities). The mapping phase then
// walks the recorded cuts from the outputs.
//
// The input must be K-bounded; callers typically pass the 2-input
// subject graph (libmap/subject.hpp) built from the mapper input.
#pragma once

#include "network/lut_circuit.hpp"
#include "network/network.hpp"

namespace chortle::flowmap {

struct FlowMapStats {
  int num_luts = 0;
  int depth = 0;        // optimal LUT depth of the K-bounded input
  double seconds = 0.0;
};

struct FlowMapResult {
  net::LutCircuit circuit;
  FlowMapStats stats;
};

/// Depth-optimal mapping of a K-bounded network into K-input LUTs.
/// Every gate's fanin count must be at most k.
FlowMapResult flowmap(const net::Network& network, int k);

}  // namespace chortle::flowmap
