#include "fuzz/shrink.hpp"

#include <algorithm>
#include <optional>
#include <tuple>

#include "base/check.hpp"

namespace chortle::fuzz {
namespace {

using sop::SopNetwork;
using NodeId = SopNetwork::NodeId;

/// One candidate edit: replace a node's cover and/or drop one output.
struct Edit {
  NodeId changed = SopNetwork::kInvalidNode;
  sop::Cover cover;  // meaningful when changed is valid
  NodeId dropped_output = SopNetwork::kInvalidNode;
};

/// Applies `edit`, drops every node (including primary inputs) that no
/// surviving output depends on, and returns the compacted network. At
/// least one primary input is always kept so every downstream stage
/// sees a non-empty interface.
SopNetwork apply_and_prune(const SopNetwork& src, const Edit& edit) {
  const auto cover_of = [&](NodeId id) -> const sop::Cover& {
    return id == edit.changed ? edit.cover : src.node(id).cover;
  };

  std::vector<NodeId> outputs;
  for (NodeId id : src.outputs())
    if (id != edit.dropped_output) outputs.push_back(id);
  CHORTLE_CHECK(!outputs.empty());

  std::vector<bool> live(static_cast<std::size_t>(src.num_nodes()), false);
  std::vector<NodeId> worklist = outputs;
  for (NodeId id : worklist) live[static_cast<std::size_t>(id)] = true;
  while (!worklist.empty()) {
    const NodeId id = worklist.back();
    worklist.pop_back();
    if (src.is_input(id)) continue;
    for (int var : cover_of(id).support()) {
      if (live[static_cast<std::size_t>(var)]) continue;
      live[static_cast<std::size_t>(var)] = true;
      worklist.push_back(var);
    }
  }

  SopNetwork out;
  std::vector<NodeId> remap(static_cast<std::size_t>(src.num_nodes()),
                            SopNetwork::kInvalidNode);
  bool kept_an_input = false;
  for (NodeId id : src.inputs()) {
    if (!live[static_cast<std::size_t>(id)]) continue;
    remap[static_cast<std::size_t>(id)] = out.add_input(src.node(id).name);
    kept_an_input = true;
  }
  if (!kept_an_input) {
    const NodeId first = src.inputs().front();
    remap[static_cast<std::size_t>(first)] =
        out.add_input(src.node(first).name);
  }
  for (NodeId id : src.topological_order()) {
    if (!live[static_cast<std::size_t>(id)]) continue;
    sop::Cover remapped;
    for (const sop::Cube& cube : cover_of(id).cubes()) {
      std::vector<sop::Literal> literals;
      for (sop::Literal lit : cube.literals()) {
        const NodeId mapped = remap[static_cast<std::size_t>(
            sop::literal_var(lit))];
        CHORTLE_CHECK(mapped != SopNetwork::kInvalidNode);
        literals.push_back(
            sop::make_literal(mapped, sop::literal_negated(lit)));
      }
      remapped.add_cube(sop::Cube(std::move(literals)));
    }
    remap[static_cast<std::size_t>(id)] =
        out.add_node(src.node(id).name, std::move(remapped));
  }
  for (NodeId id : outputs) out.mark_output(remap[static_cast<std::size_t>(id)]);
  return out;
}

/// Lexicographic size: internal gates, then literals, then inputs.
std::tuple<int, int, int> cost_of(const SopNetwork& network) {
  return {network.num_nodes() - static_cast<int>(network.inputs().size()),
          network.total_literals(),
          static_cast<int>(network.inputs().size())};
}

/// All edits of one reduction round, most aggressive first.
std::vector<Edit> candidate_edits(const SopNetwork& network) {
  std::vector<Edit> edits;
  if (network.outputs().size() > 1) {
    for (NodeId id : network.outputs())
      edits.push_back(Edit{SopNetwork::kInvalidNode, {}, id});
  }
  for (NodeId id = 0; id < network.num_nodes(); ++id) {
    if (network.is_input(id)) continue;
    const sop::Cover& cover = network.node(id).cover;
    edits.push_back(Edit{id, sop::Cover::zero(), SopNetwork::kInvalidNode});
    edits.push_back(Edit{id, sop::Cover::one(), SopNetwork::kInvalidNode});
    const std::vector<NodeId> fanins = network.fanins(id);
    for (std::size_t i = 0; i < fanins.size() && i < 4; ++i) {
      sop::Cover buffer;
      buffer.add_cube(sop::Cube(
          std::vector<sop::Literal>{sop::make_literal(fanins[i], false)}));
      edits.push_back(Edit{id, std::move(buffer), SopNetwork::kInvalidNode});
    }
    if (cover.num_cubes() > 1) {
      for (int c = 0; c < cover.num_cubes(); ++c) {
        sop::Cover without;
        for (int other = 0; other < cover.num_cubes(); ++other)
          if (other != c) without.add_cube(cover.cube(other));
        edits.push_back(
            Edit{id, std::move(without), SopNetwork::kInvalidNode});
      }
    }
    for (int c = 0; c < cover.num_cubes(); ++c) {
      const sop::Cube& cube = cover.cube(c);
      if (cube.size() < 2) continue;
      for (std::size_t l = 0; l < cube.literals().size(); ++l) {
        sop::Cover narrowed;
        for (int other = 0; other < cover.num_cubes(); ++other) {
          if (other != c) {
            narrowed.add_cube(cover.cube(other));
            continue;
          }
          std::vector<sop::Literal> literals = cube.literals();
          literals.erase(literals.begin() + static_cast<long>(l));
          narrowed.add_cube(sop::Cube(std::move(literals)));
        }
        edits.push_back(
            Edit{id, std::move(narrowed), SopNetwork::kInvalidNode});
      }
    }
  }
  return edits;
}

bool has_matching_failure(const Verdict& verdict, const Failure& wanted) {
  return std::any_of(verdict.failures.begin(), verdict.failures.end(),
                     [&](const Failure& f) {
                       return f.stage == wanted.stage &&
                              f.kind == wanted.kind;
                     });
}

}  // namespace

ShrinkResult shrink(const FuzzCase& failing,
                    const OracleOptions& oracle_options,
                    const ShrinkOptions& options) {
  ShrinkResult result;
  result.fuzz_case = failing;
  result.verdict = check_case(failing, oracle_options);
  ++result.attempts;
  CHORTLE_REQUIRE(!result.verdict.ok(),
                  "shrink requires a case the oracle rejects");
  const Failure target = result.verdict.failures.front();

  bool improved = true;
  while (improved && result.attempts < options.max_attempts) {
    improved = false;
    for (const Edit& edit : candidate_edits(result.fuzz_case.network)) {
      if (result.attempts >= options.max_attempts) break;
      SopNetwork candidate;
      try {
        candidate = apply_and_prune(result.fuzz_case.network, edit);
        candidate.check();
      } catch (const std::exception&) {
        continue;  // the edit produced an invalid network; skip it
      }
      if (cost_of(candidate) >= cost_of(result.fuzz_case.network)) continue;

      FuzzCase attempt = result.fuzz_case;
      attempt.network = candidate;
      const Verdict verdict = check_case(attempt, oracle_options);
      ++result.attempts;
      if (!has_matching_failure(verdict, target)) continue;

      result.fuzz_case.network = std::move(attempt.network);
      result.verdict = verdict;
      ++result.accepted;
      improved = true;
      break;  // restart the candidate enumeration on the smaller network
    }
  }
  return result;
}

}  // namespace chortle::fuzz
