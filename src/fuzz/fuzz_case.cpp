#include "fuzz/fuzz_case.hpp"

namespace chortle::fuzz {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kChortle: return "chortle";
    case Backend::kFlowMap: return "flowmap";
    case Backend::kLibMap: return "libmap";
    case Backend::kCutMap: return "cutmap";
    case Backend::kPortfolio: return "portfolio";
  }
  return "?";
}

std::vector<Backend> all_backends() {
  return {Backend::kChortle, Backend::kFlowMap, Backend::kLibMap,
          Backend::kCutMap, Backend::kPortfolio};
}

}  // namespace chortle::fuzz
