#include "fuzz/kernel_check.hpp"

#include <array>
#include <cstddef>
#include <ostream>
#include <utility>

#include "base/rng.hpp"
#include "base/timer.hpp"
#include "truth/packed.hpp"
#include "truth/truth_table.hpp"

namespace chortle::fuzz {
namespace {

using truth::PackedTable;
using truth::TruthTable;

/// A random (packed, scalar) pair holding identical bits, built from
/// independent random words so every arity exercises full-width tables.
struct Pair {
  PackedTable packed;
  TruthTable scalar;
};

Pair random_pair(Rng& rng, int num_vars) {
  std::array<std::uint64_t, PackedTable::kMaxWords> words{};
  const std::uint64_t minterms = std::uint64_t{1} << num_vars;
  const std::size_t count = static_cast<std::size_t>((minterms + 63) / 64);
  for (std::size_t w = 0; w < count; ++w) words[w] = rng.next_u64();
  if (minterms < 64) words[0] &= (std::uint64_t{1} << minterms) - 1;
  const TruthTable scalar =
      TruthTable::from_words(words.data(), count, num_vars);
  return Pair{PackedTable::from_truth(scalar), scalar};
}

class Checker {
 public:
  Checker(KernelCheckReport& report, std::ostream* log, int round)
      : report_(report), log_(log), round_(round) {}

  /// Compares a packed result against the scalar reference bit for bit
  /// (through to_truth, which the golden-anchored emitters also use).
  void same(const char* op, const PackedTable& got, const TruthTable& want) {
    if (got.num_vars() == want.num_vars() && got.to_truth() == want) return;
    fail(std::string(op) + ": packed " + got.to_truth().to_binary() +
         " != scalar " + want.to_binary());
  }

  void equal_u64(const char* op, std::uint64_t got, std::uint64_t want) {
    if (got == want) return;
    fail(std::string(op) + ": packed " + std::to_string(got) +
         " != scalar " + std::to_string(want));
  }

  void fail(std::string message) {
    message = "round " + std::to_string(round_) + ": " + std::move(message);
    if (log_) *log_ << "kernel_check: " << message << '\n';
    report_.mismatches.push_back(std::move(message));
  }

 private:
  KernelCheckReport& report_;
  std::ostream* log_;
  int round_;
};

void check_round(Rng& rng, Checker& check) {
  const int num_vars =
      static_cast<int>(rng.next_below(PackedTable::kMaxVars + 1));
  const Pair a = random_pair(rng, num_vars);
  const Pair b = random_pair(rng, num_vars);

  // Conversions must round-trip exactly: from_truth . to_truth = id.
  check.same("from_truth/to_truth", a.packed, a.scalar);
  check.same("from_truth/to_truth", b.packed, b.scalar);

  // Constant and projection constructors.
  check.same("zeros", PackedTable::zeros(num_vars),
             TruthTable::zeros(num_vars));
  check.same("ones", PackedTable::ones(num_vars), TruthTable::ones(num_vars));
  for (int v = 0; v < num_vars; ++v)
    check.same("var", PackedTable::var(v, num_vars),
               TruthTable::var(v, num_vars));

  // Word-parallel logic ops against the scalar reference ops.
  check.same("not", ~a.packed, ~a.scalar);
  check.same("and", a.packed & b.packed, a.scalar & b.scalar);
  check.same("or", a.packed | b.packed, a.scalar | b.scalar);
  check.same("xor", a.packed ^ b.packed, a.scalar ^ b.scalar);
  {
    // Compound assignment chains the way the emitter accumulates.
    PackedTable acc = a.packed;
    acc &= b.packed;
    acc |= a.packed;
    acc ^= b.packed;
    TruthTable ref = a.scalar;
    ref &= b.scalar;
    ref |= a.scalar;
    ref ^= b.scalar;
    check.same("compound-assign", acc, ref);
  }

  // Shannon cofactors on every input (covers both the in-word shift
  // path, var < 6, and the whole-word swap path above).
  for (int v = 0; v < num_vars; ++v) {
    check.same("cofactor0", a.packed.cofactor0(v), a.scalar.cofactor0(v));
    check.same("cofactor1", a.packed.cofactor1(v), a.scalar.cofactor1(v));
  }

  // Scalar queries and single-bit writes.
  check.equal_u64("count_ones", a.packed.count_ones(), a.scalar.count_ones());
  check.equal_u64("is_zero", a.packed.is_zero() ? 1 : 0,
                  a.scalar.is_zero() ? 1 : 0);
  {
    PackedTable p = a.packed;
    TruthTable s = a.scalar;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t minterm = rng.next_below(p.num_minterms());
      const bool value = rng.next_bool();
      p.set_bit(minterm, value);
      s.set_bit(minterm, value);
      check.equal_u64("bit", p.bit(minterm) ? 1 : 0, s.bit(minterm) ? 1 : 0);
    }
    check.same("set_bit", p, s);
  }

  // Equality must agree with the reference comparison.
  check.equal_u64("equals", a.packed == b.packed ? 1 : 0,
                  a.scalar == b.scalar ? 1 : 0);
}

}  // namespace

KernelCheckReport check_kernels(int rounds, std::uint64_t seed,
                                std::ostream* log) {
  KernelCheckReport report;
  WallTimer timer;
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    Checker check(report, log, round);
    check_round(rng, check);
    ++report.rounds_completed;
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace chortle::fuzz
