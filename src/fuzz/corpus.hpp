// The regression corpus: every counterexample the shrinker minimizes is
// written as a standalone BLIF file whose leading '#' comment lines
// record the full replay recipe — mapper options, backend set, injected
// fault (if the failure was an injected one), and whether the oracle is
// expected to pass or fail. tests/corpus/ is scanned by
// fuzz_regression_test, so each reproducer stays red (or green) forever.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"

namespace chortle::fuzz {

struct CorpusEntry {
  std::string name;           // file stem, also the BLIF model name
  FuzzCase fuzz_case;
  Injection injection;        // replayed through the oracle
  bool expect_failure = false;
  std::string note;           // free text (usually the verdict summary)
};

/// Serializes an entry to its on-disk form (metadata header + BLIF).
std::string encode_entry(const CorpusEntry& entry);

/// Parses the on-disk form. Unknown header keys are ignored so the
/// format can grow. Throws InvalidInput on malformed content.
CorpusEntry decode_entry(const std::string& text, const std::string& name);

/// Writes `entry` into `directory` (created if missing) as
/// `<name>.blif`; returns the full path.
std::string write_entry(const std::string& directory,
                        const CorpusEntry& entry);

/// Loads every *.blif under `directory`, sorted by file name. A missing
/// directory is an empty corpus.
std::vector<CorpusEntry> load_corpus(const std::string& directory);

/// Replays an entry through the oracle with its recorded injection.
Verdict replay_entry(const CorpusEntry& entry,
                     OracleOptions options = {});

}  // namespace chortle::fuzz
