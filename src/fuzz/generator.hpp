// Parameter-space sampling for the fuzzer: each draw produces one fuzz
// case whose network shape (size class, fanin distribution, wide nodes,
// reconvergence depth, degenerate constant/buffer nodes) and mapper
// configuration (K, split threshold, decomposition search, fanout
// duplication) are sampled independently, so the sweep reaches the
// corners a fixed benchmark set never does.
#pragma once

#include "base/rng.hpp"
#include "fuzz/fuzz_case.hpp"

namespace chortle::fuzz {

struct GeneratorOptions {
  /// Upper bound of the largest size class (smoke runs shrink this).
  int max_gates = 120;
};

/// Samples one case. Deterministic in the RNG state: the same state
/// always yields the same case.
FuzzCase sample_case(Rng& rng, const GeneratorOptions& options = {});

}  // namespace chortle::fuzz
