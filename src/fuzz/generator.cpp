#include "fuzz/generator.hpp"

#include <algorithm>
#include <sstream>

#include "mcnc/random_logic.hpp"

namespace chortle::fuzz {

FuzzCase sample_case(Rng& rng, const GeneratorOptions& options) {
  FuzzCase result;

  mcnc::RandomLogicParams params;
  // Size class: tiny networks reach the degenerate single-gate corners,
  // medium ones the realistic fanin/reconvergence mix.
  const double size_roll = rng.next_double();
  if (size_roll < 0.25) {
    params.num_gates = static_cast<int>(rng.next_in(1, 8));
    params.num_inputs = static_cast<int>(rng.next_in(2, 6));
  } else if (size_roll < 0.70) {
    params.num_gates = static_cast<int>(rng.next_in(8, 40));
    params.num_inputs = static_cast<int>(rng.next_in(3, 12));
  } else {
    params.num_gates = static_cast<int>(
        rng.next_in(40, std::max(41, options.max_gates)));
    params.num_inputs = static_cast<int>(rng.next_in(4, 20));
  }
  // Few inputs + many gates forces deep reconvergent structure.
  params.num_outputs =
      rng.next_bool(0.2) ? 1 : static_cast<int>(rng.next_in(1, 10));
  params.max_fanin = static_cast<int>(rng.next_in(2, 8));
  // 0 disables the periodic wide node; small periods stress splitting.
  params.wide_node_every =
      rng.next_bool(0.5) ? 0 : static_cast<int>(rng.next_in(3, 25));
  params.negate_probability = rng.next_double() * 0.5;
  if (rng.next_bool(0.3))
    params.constant_node_probability = rng.next_double() * 0.2;
  if (rng.next_bool(0.3))
    params.buffer_node_probability = rng.next_double() * 0.2;
  params.seed = rng.next_u64();
  result.network = mcnc::random_logic(params);

  core::Options& mapper = result.options;
  mapper.k = static_cast<int>(rng.next_in(2, 6));
  // Mostly the paper's threshold; sometimes tiny, to force splitting on
  // ordinary nodes, or right at the K boundary.
  if (rng.next_bool(0.3))
    mapper.split_threshold = static_cast<int>(rng.next_in(2, 16));
  mapper.search_decompositions = !rng.next_bool(0.2);
  if (rng.next_bool(0.3)) {
    mapper.duplicate_fanout_logic = true;
    mapper.duplication_max_gates = static_cast<int>(rng.next_in(1, 12));
    mapper.duplication_max_readers = static_cast<int>(rng.next_in(1, 4));
  }

  std::ostringstream os;
  os << "gates=" << params.num_gates << " inputs=" << params.num_inputs
     << " outputs=" << params.num_outputs << " fanin<=" << params.max_fanin
     << " wide_every=" << params.wide_node_every
     << " const_p=" << params.constant_node_probability
     << " buf_p=" << params.buffer_node_probability
     << " seed=" << params.seed << " | k=" << mapper.k
     << " split=" << mapper.split_threshold
     << " search=" << mapper.search_decompositions
     << " dup=" << mapper.duplicate_fanout_logic;
  result.description = os.str();
  return result;
}

}  // namespace chortle::fuzz
