#include "fuzz/oracle.hpp"

#include <exception>
#include <map>
#include <sstream>

#include "bdd/equiv.hpp"
#include "chortle/forest.hpp"
#include "chortle/mapper.hpp"
#include "cutmap/cutmap.hpp"
#include "flowmap/flowmap.hpp"
#include "libmap/library.hpp"
#include "libmap/matcher.hpp"
#include "libmap/subject.hpp"
#include "obs/metrics.hpp"
#include "opt/script.hpp"
#include "portfolio/portfolio.hpp"
#include "sim/simulate.hpp"

namespace chortle::fuzz {
namespace {

std::string describe_mismatch(const sim::Mismatch& m) {
  std::ostringstream os;
  os << "output '" << m.output_name << "' differs under inputs ";
  for (bool bit : m.input_values) os << (bit ? '1' : '0');
  return os.str();
}

std::string describe_witness(const bdd::FormalOutcome& outcome) {
  std::ostringstream os;
  os << "output '" << outcome.output_name << "' differs under inputs ";
  for (bool bit : outcome.witness) os << (bit ? '1' : '0');
  return os.str();
}

/// The baseline mapper's library for a given K, built once per process
/// (complete for K <= 3, level-0 kernels above, as the paper does).
const libmap::Library& library_for(int k) {
  static std::map<int, libmap::Library> cache;
  auto it = cache.find(k);
  if (it == cache.end()) {
    it = cache
             .emplace(k, k <= 3 ? libmap::Library::complete(k)
                                : libmap::Library::level0_kernels(k))
             .first;
  }
  return it->second;
}

/// A copy of `circuit` with one truth-table bit flipped (the injected
/// miscompile the oracle must catch). A circuit without LUTs is
/// returned unchanged.
net::LutCircuit with_injected_fault(const net::LutCircuit& circuit,
                                    const Injection& injection) {
  if (circuit.num_luts() == 0) return circuit;
  const int victim =
      injection.lut_index % circuit.num_luts();
  net::LutCircuit corrupted(circuit.k());
  for (const std::string& name : circuit.input_names())
    corrupted.add_input(name);
  for (int i = 0; i < circuit.num_luts(); ++i) {
    net::Lut lut = circuit.luts()[static_cast<std::size_t>(i)];
    if (i == victim) {
      const std::uint64_t bit =
          injection.bit_index % lut.function.num_minterms();
      lut.function.set_bit(bit, !lut.function.bit(bit));
    }
    corrupted.add_lut(std::move(lut));
  }
  for (const net::LutOutput& o : circuit.outputs()) {
    if (o.is_const)
      corrupted.add_const_output(o.name, o.const_value);
    else
      corrupted.add_output(o.name, o.signal, o.negated);
  }
  return corrupted;
}

class OracleRun {
 public:
  OracleRun(const FuzzCase& fuzz_case, const OracleOptions& options)
      : case_(fuzz_case), options_(options) {}

  Verdict run() {
    try {
      case_.network.check();
      case_.options.validate();
    } catch (const std::exception& error) {
      fail("case", "exception", error.what());
      return verdict_;
    }

    opt::OptimizedDesign design;
    try {
      design = opt::optimize(case_.network);
      check_against_source("optimize", sim::design_of(design.network));
      check_forest_invariants(design.network);
    } catch (const std::exception& error) {
      fail("optimize", "exception", error.what());
      return verdict_;
    }

    for (Backend backend : case_.backends) {
      ++verdict_.backends_run;
      OBS_COUNT("fuzz.backend_runs", 1);
      try {
        run_backend(backend, design.network);
      } catch (const std::exception& error) {
        fail(to_string(backend), "exception", error.what());
      }
    }
    return verdict_;
  }

 private:
  void fail(const std::string& stage, const std::string& kind,
            const std::string& detail) {
    // The counter name depends on the runtime failure kind, so this
    // goes through the registry directly rather than OBS_COUNT (whose
    // per-call-site MetricId cache assumes one fixed name).
    if constexpr (obs::kObsEnabled) {
      auto& registry = obs::Registry::global();
      registry.add(registry.counter("fuzz.disagree." + kind), 1);
    }
    verdict_.failures.push_back(Failure{stage, kind, detail});
  }

  /// Simulation (and, when feasible, BDD) comparison of `mapped`
  /// against the original source network.
  void check_against_source(const std::string& stage,
                            const sim::Design& mapped) {
    sim::EquivalenceOptions sim_options;
    sim_options.random_words = options_.sim_random_words;
    sim_options.seed = 0x5EEDull;
    const auto mismatch =
        sim::find_mismatch(sim::design_of(case_.network), mapped,
                           sim_options);
    if (mismatch) fail(stage, "sim-mismatch", describe_mismatch(*mismatch));
  }

  void check_bdd_against_source(const std::string& stage,
                                const net::LutCircuit& circuit) {
    if (static_cast<int>(case_.network.inputs().size()) >
        options_.bdd_input_limit)
      return;
    verdict_.bdd_attempted = true;
    const bdd::FormalOutcome outcome = bdd::check_equivalence(
        case_.network, circuit, options_.bdd_max_nodes);
    if (outcome.status == bdd::FormalOutcome::Status::kDifferent)
      fail(stage, "bdd-different", describe_witness(outcome));
    // kInconclusive: simulation already sampled the pair; not a failure.
  }

  /// Paper §3: the forest partition must place every live gate in
  /// exactly one tree, and every non-root tree gate must be read by
  /// exactly one fanin edge and no primary output (fanout-free trees).
  /// References are counted among live readers only — the decomposed
  /// mapper input may contain dead shared gates, which the forest
  /// rightly ignores.
  void check_forest_invariants(const net::Network& network) {
    const core::Forest forest = core::build_forest(network);
    std::vector<int> refs(static_cast<std::size_t>(network.num_nodes()), 0);
    for (net::NodeId id = 0; id < network.num_nodes(); ++id) {
      if (network.is_input(id) ||
          !forest.is_live[static_cast<std::size_t>(id)])
        continue;
      for (const net::Fanin& fanin : network.node(id).fanins)
        ++refs[static_cast<std::size_t>(fanin.node)];
    }
    for (const net::Output& output : network.outputs())
      if (!output.is_const) ++refs[static_cast<std::size_t>(output.node)];
    std::vector<int> seen(static_cast<std::size_t>(network.num_nodes()), 0);
    for (const core::Tree& tree : forest.trees) {
      if (tree.gates.empty() || tree.gates.back() != tree.root) {
        fail("forest", "structure", "tree root is not its last gate");
        return;
      }
      for (net::NodeId gate : tree.gates) {
        ++seen[static_cast<std::size_t>(gate)];
        if (gate == tree.root) continue;
        if (refs[static_cast<std::size_t>(gate)] != 1) {
          std::ostringstream os;
          os << "non-root gate " << gate << " of tree " << tree.root
             << " has " << refs[static_cast<std::size_t>(gate)]
             << " references (trees must be fanout-free)";
          fail("forest", "structure", os.str());
        }
      }
    }
    for (net::NodeId id = 0; id < network.num_nodes(); ++id) {
      if (network.is_input(id)) continue;
      const bool live = forest.is_live[static_cast<std::size_t>(id)];
      const int count = seen[static_cast<std::size_t>(id)];
      if (live != (count == 1)) {
        std::ostringstream os;
        os << "gate " << id << " is " << (live ? "live" : "dead")
           << " but appears in " << count << " trees";
        fail("forest", "structure", os.str());
      }
    }
  }

  /// Invariants every mapped circuit must satisfy regardless of backend.
  void check_structure(const std::string& stage,
                       const net::LutCircuit& circuit, int reported_luts) {
    circuit.check();
    if (circuit.k() != case_.options.k) {
      fail(stage, "structure", "circuit K does not match the requested K");
      return;
    }
    for (const net::Lut& lut : circuit.luts()) {
      if (static_cast<int>(lut.inputs.size()) > case_.options.k) {
        fail(stage, "structure",
             "LUT '" + lut.name + "' has more than K inputs");
        return;
      }
    }
    if (reported_luts != circuit.num_luts()) {
      std::ostringstream os;
      os << "reported " << reported_luts << " LUTs but the circuit has "
         << circuit.num_luts();
      fail(stage, "lut-count", os.str());
    }
  }

  void check_circuit(const std::string& stage,
                     const net::LutCircuit& circuit, int reported_luts) {
    check_structure(stage, circuit, reported_luts);
    check_against_source(stage, sim::design_of(circuit));
    check_bdd_against_source(stage, circuit);
  }

  void run_backend(Backend backend, const net::Network& mapper_input) {
    switch (backend) {
      case Backend::kChortle: {
        const core::MapResult result =
            core::map_network(mapper_input, case_.options);
        net::LutCircuit circuit = result.circuit;
        if (options_.injection.enabled)
          circuit = with_injected_fault(circuit, options_.injection);
        check_circuit("chortle", circuit, result.stats.num_luts);
        // Cost-driven duplication (§5) only ever accepts a replication
        // that the exact tree DP proves profitable, so enabling it can
        // never increase the LUT count.
        if (case_.options.duplicate_fanout_logic &&
            !options_.injection.enabled) {
          core::Options plain = case_.options;
          plain.duplicate_fanout_logic = false;
          const core::MapResult without =
              core::map_network(mapper_input, plain);
          if (result.stats.num_luts > without.stats.num_luts) {
            std::ostringstream os;
            os << "duplication increased LUT count: "
               << result.stats.num_luts << " > " << without.stats.num_luts;
            fail("chortle", "lut-count", os.str());
          }
        }
        break;
      }
      case Backend::kFlowMap: {
        const net::Network subject =
            libmap::build_subject_graph(mapper_input);
        const flowmap::FlowMapResult result =
            flowmap::flowmap(subject, case_.options.k);
        check_circuit("flowmap", result.circuit, result.stats.num_luts);
        break;
      }
      case Backend::kLibMap: {
        const libmap::BaselineResult result = libmap::map_with_library(
            mapper_input, library_for(case_.options.k));
        check_circuit("libmap", result.circuit, result.stats.num_luts);
        break;
      }
      case Backend::kCutMap: {
        const net::Network subject =
            libmap::build_subject_graph(mapper_input);
        cutmap::CutMapOptions cut_options;
        cut_options.k = case_.options.k;
        const cutmap::CutMapResult result =
            cutmap::map_luts(subject, cut_options);
        check_circuit("cutmap", result.circuit, result.stats.num_luts);
        break;
      }
      case Backend::kPortfolio: {
        // Race every backend with no budget (all racers run to
        // completion — the case stays deterministic) and hold the
        // winner to the oracle's full battery plus the portfolio's own
        // guarantee: under the LUT objective the stitched/raced cover
        // is never worse than plain chortle, because chortle is the
        // fallback and ties break toward it.
        portfolio::PortfolioConfig race =
            portfolio::default_portfolio().config();
        race.budget_ms = -1;
        const core::MapResult result = portfolio::default_portfolio()
                                           .map_with(mapper_input,
                                                     case_.options, race,
                                                     nullptr);
        check_circuit("portfolio", result.circuit, result.stats.num_luts);
        const core::MapResult plain =
            core::map_network(mapper_input, case_.options);
        if (result.stats.num_luts > plain.stats.num_luts) {
          std::ostringstream os;
          os << "portfolio (winner " << result.stats.portfolio_winner
             << ") used " << result.stats.num_luts
             << " LUTs, worse than plain chortle's "
             << plain.stats.num_luts;
          fail("portfolio", "lut-count", os.str());
        }
        break;
      }
    }
  }

  const FuzzCase& case_;
  const OracleOptions& options_;
  Verdict verdict_;
};

}  // namespace

std::string Verdict::summary() const {
  if (failures.empty()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) os << "; ";
    os << failures[i].stage << "/" << failures[i].kind << ": "
       << failures[i].detail;
  }
  return os.str();
}

Verdict check_case(const FuzzCase& fuzz_case, const OracleOptions& options) {
  return OracleRun(fuzz_case, options).run();
}

}  // namespace chortle::fuzz
