#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "blif/blif.hpp"

namespace chortle::fuzz {
namespace {

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, separator))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

Backend backend_from_name(const std::string& name) {
  for (Backend backend : all_backends())
    if (name == to_string(backend)) return backend;
  throw InvalidInput("unknown fuzz backend '" + name + "'");
}

/// "k=4 split=10 ..." -> key/value pairs.
std::vector<std::pair<std::string, std::string>> parse_assignments(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> result;
  for (const std::string& token : split(text, ' ')) {
    const auto equals = token.find('=');
    CHORTLE_REQUIRE(equals != std::string::npos && equals > 0,
                    "malformed reproducer assignment '" + token + "'");
    result.emplace_back(token.substr(0, equals), token.substr(equals + 1));
  }
  return result;
}

}  // namespace

std::string encode_entry(const CorpusEntry& entry) {
  const core::Options& o = entry.fuzz_case.options;
  std::ostringstream os;
  os << "# chortle-fuzz reproducer v1\n";
  os << "# expect: " << (entry.expect_failure ? "fail" : "pass") << "\n";
  os << "# backends: ";
  for (std::size_t i = 0; i < entry.fuzz_case.backends.size(); ++i)
    os << (i > 0 ? "," : "") << to_string(entry.fuzz_case.backends[i]);
  os << "\n";
  os << "# options: k=" << o.k << " split=" << o.split_threshold
     << " search=" << (o.search_decompositions ? 1 : 0)
     << " dup=" << (o.duplicate_fanout_logic ? 1 : 0)
     << " dup_gates=" << o.duplication_max_gates
     << " dup_readers=" << o.duplication_max_readers << "\n";
  if (entry.injection.enabled)
    os << "# inject: lut=" << entry.injection.lut_index
       << " bit=" << entry.injection.bit_index << "\n";
  if (!entry.note.empty()) os << "# note: " << entry.note << "\n";
  os << blif::write_blif_string(entry.fuzz_case.network, entry.name);
  return os.str();
}

CorpusEntry decode_entry(const std::string& text, const std::string& name) {
  CorpusEntry entry;
  entry.name = name;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '#') break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(1, colon - 1);
    key.erase(std::remove(key.begin(), key.end(), ' '), key.end());
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(0, 1);
    if (key == "expect") {
      CHORTLE_REQUIRE(value == "fail" || value == "pass",
                      "reproducer expect must be 'fail' or 'pass'");
      entry.expect_failure = value == "fail";
    } else if (key == "backends") {
      entry.fuzz_case.backends.clear();
      for (const std::string& backend_name : split(value, ','))
        entry.fuzz_case.backends.push_back(backend_from_name(backend_name));
    } else if (key == "options") {
      core::Options& o = entry.fuzz_case.options;
      for (const auto& [option, text_value] : parse_assignments(value)) {
        const int number = std::stoi(text_value);
        if (option == "k") o.k = number;
        else if (option == "split") o.split_threshold = number;
        else if (option == "search") o.search_decompositions = number != 0;
        else if (option == "dup") o.duplicate_fanout_logic = number != 0;
        else if (option == "dup_gates") o.duplication_max_gates = number;
        else if (option == "dup_readers") o.duplication_max_readers = number;
      }
    } else if (key == "inject") {
      entry.injection.enabled = true;
      for (const auto& [option, text_value] : parse_assignments(value)) {
        if (option == "lut")
          entry.injection.lut_index = std::stoi(text_value);
        else if (option == "bit")
          entry.injection.bit_index = std::stoull(text_value);
      }
    } else if (key == "note") {
      entry.note = value;
    }
  }
  entry.fuzz_case.network = blif::read_blif_string(text).network;
  entry.fuzz_case.description = "corpus:" + name;
  return entry;
}

std::string write_entry(const std::string& directory,
                        const CorpusEntry& entry) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const fs::path path = fs::path(directory) / (entry.name + ".blif");
  std::ofstream out(path);
  CHORTLE_REQUIRE(static_cast<bool>(out),
                  "cannot write reproducer " + path.string());
  out << encode_entry(entry);
  return path.string();
}

std::vector<CorpusEntry> load_corpus(const std::string& directory) {
  namespace fs = std::filesystem;
  std::vector<CorpusEntry> entries;
  if (!fs::is_directory(directory)) return entries;
  std::vector<fs::path> paths;
  for (const auto& item : fs::directory_iterator(directory))
    if (item.is_regular_file() && item.path().extension() == ".blif")
      paths.push_back(item.path());
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream in(path);
    CHORTLE_REQUIRE(static_cast<bool>(in),
                    "cannot read reproducer " + path.string());
    std::ostringstream text;
    text << in.rdbuf();
    entries.push_back(decode_entry(text.str(), path.stem().string()));
  }
  return entries;
}

Verdict replay_entry(const CorpusEntry& entry, OracleOptions options) {
  options.injection = entry.injection;
  return check_case(entry.fuzz_case, options);
}

}  // namespace chortle::fuzz
