#include "fuzz/fuzzer.hpp"

#include <ostream>
#include <sstream>

#include "base/timer.hpp"
#include "fuzz/corpus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace chortle::fuzz {

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  WallTimer timer;
  for (int run = 0; run < options.runs; ++run) {
    if (options.time_budget_seconds > 0.0 &&
        timer.seconds() >= options.time_budget_seconds)
      break;
    // Each run seeds its own RNG (SplitMix decorrelates nearby seeds),
    // so run N is reproducible in isolation.
    obs::TraceSpan case_span("fuzz.case", run);
    Rng rng(options.seed + static_cast<std::uint64_t>(run));
    FuzzCase fuzz_case = sample_case(rng, options.generator);
    fuzz_case.options.jobs = options.jobs;
    fuzz_case.backends = options.backends;
    OBS_COUNT("fuzz.cases_generated", 1);
    const Verdict verdict = check_case(fuzz_case, options.oracle);
    ++report.runs_completed;
    if (options.log && (run + 1) % 50 == 0)
      *options.log << "fuzz: " << (run + 1) << "/" << options.runs
                   << " runs, " << report.failures.size() << " failures ("
                   << timer.seconds() << "s)\n";
    if (verdict.ok()) continue;

    OBS_COUNT("fuzz.failures", 1);
    RunFailure failure;
    failure.run = run;
    failure.description = fuzz_case.description;
    failure.verdict = verdict;
    if (options.log)
      *options.log << "fuzz: run " << run << " FAILED [" << verdict.summary()
                   << "] case: " << fuzz_case.description << "\n";
    if (options.shrink_failures) {
      obs::TraceSpan shrink_span("fuzz.shrink", run);
      const ShrinkResult shrunk =
          shrink(fuzz_case, options.oracle, options.shrinker);
      OBS_COUNT("fuzz.shrink_attempts", shrunk.attempts);
      failure.shrunk = shrunk.fuzz_case;
      failure.shrunk_verdict = shrunk.verdict;
      if (options.log)
        *options.log << "fuzz: shrunk to "
                     << shrunk.fuzz_case.network.num_nodes() -
                            static_cast<int>(
                                shrunk.fuzz_case.network.inputs().size())
                     << " gates in " << shrunk.attempts << " attempts ["
                     << shrunk.verdict.summary() << "]\n";
    } else {
      failure.shrunk = fuzz_case;
      failure.shrunk_verdict = verdict;
    }
    if (!options.corpus_dir.empty()) {
      CorpusEntry entry;
      std::ostringstream name;
      name << "repro_seed" << options.seed << "_run" << run;
      entry.name = name.str();
      entry.fuzz_case = failure.shrunk;
      entry.injection = options.oracle.injection;
      entry.expect_failure = true;
      entry.note = failure.shrunk_verdict.summary();
      failure.reproducer_path = write_entry(options.corpus_dir, entry);
      if (options.log)
        *options.log << "fuzz: wrote " << failure.reproducer_path << "\n";
    }
    report.failures.push_back(std::move(failure));
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace chortle::fuzz
