// The unit of work of the differential fuzzer: one source network plus
// the mapper configuration and backend set it is checked under. A case
// is fully deterministic — re-running the oracle on an identical case
// reproduces the identical verdict — which is what makes greedy
// counterexample shrinking and corpus replay possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chortle/options.hpp"
#include "sop/sop_network.hpp"

namespace chortle::fuzz {

/// The mapping backends the oracle cross-checks. kPortfolio races the
/// other four (src/portfolio) and is additionally held to the
/// never-worse-than-chortle objective guarantee.
enum class Backend { kChortle, kFlowMap, kLibMap, kCutMap, kPortfolio };

const char* to_string(Backend backend);

/// All backends, in canonical order.
std::vector<Backend> all_backends();

/// A deterministic fault injected into the Chortle backend's mapped
/// circuit before verification: one flipped LUT truth-table bit. This
/// is how the oracle (and its tests) prove that a real miscompile would
/// be caught rather than silently waved through.
struct Injection {
  bool enabled = false;
  int lut_index = 0;           // taken modulo the circuit's LUT count
  std::uint64_t bit_index = 0; // taken modulo the LUT's minterm count
};

struct FuzzCase {
  sop::SopNetwork network;
  core::Options options;           // mapper options, incl. K
  std::vector<Backend> backends = all_backends();
  std::string description;         // parameter summary for reports
};

}  // namespace chortle::fuzz
