// The differential oracle: runs one fuzz case through the full pipeline
// (optimization script, then every requested mapping backend) and
// cross-checks each stage against the source network — bit-parallel
// simulation always, BDD equivalence when the input count permits —
// plus the structural invariants every mapped circuit must satisfy
// (LUT fanins within K, acyclic circuit, fanout-free forest trees,
// reported LUT count matching the circuit). Any violation becomes a
// Failure; the shrinker and the corpus replay test both drive cases
// through this single entry point.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"

namespace chortle::fuzz {

struct OracleOptions {
  /// BDD equivalence is attempted when the source has at most this many
  /// inputs; an inconclusive outcome (node budget) is not a failure —
  /// simulation has already sampled the design by then.
  int bdd_input_limit = 14;
  std::size_t bdd_max_nodes = 200'000;
  /// Random simulation volume (exhaustive below sim's input limit).
  int sim_random_words = 64;
  /// Fault injected into the Chortle backend's circuit (see fuzz_case.hpp).
  Injection injection;
};

/// One detected violation. `stage` names the pipeline stage that
/// produced it ("optimize", "forest", "chortle", "flowmap", "libmap");
/// `kind` is a stable category ("sim-mismatch", "bdd-different",
/// "structure", "lut-count", "exception"); `detail` is human-readable.
struct Failure {
  std::string stage;
  std::string kind;
  std::string detail;
};

struct Verdict {
  std::vector<Failure> failures;
  int backends_run = 0;
  bool bdd_attempted = false;

  bool ok() const { return failures.empty(); }
  /// "stage/kind: detail; ..." for logs and reproducer headers.
  std::string summary() const;
};

/// Runs the oracle on one case. Never throws on a detected miscompile —
/// everything, including exceptions escaping a backend, is reported as
/// a Failure so the fuzz loop and shrinker can keep going.
Verdict check_case(const FuzzCase& fuzz_case,
                   const OracleOptions& options = {});

}  // namespace chortle::fuzz
