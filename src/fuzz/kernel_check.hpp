// Kernel-equivalence mode of the fuzz harness: randomized cross-checks
// of the bit-parallel truth::PackedTable kernels against the scalar
// truth::TruthTable reference, the same pairing the mapper's two
// emission builds (default vs -DCHORTLE_SCALAR_KERNELS=ON) rely on
// being bit-identical. Every packed operation — construction, bit
// access, NOT/AND/OR/XOR, Shannon cofactors, conversions — is mirrored
// on a TruthTable holding the same bits and the results compared
// minterm for minterm, on tables up to PackedTable::kMaxVars (10)
// inputs. Deterministic for a given seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace chortle::fuzz {

struct KernelCheckReport {
  int rounds_completed = 0;
  /// One human-readable line per mismatching operation.
  std::vector<std::string> mismatches;
  double seconds = 0.0;
  bool ok() const { return mismatches.empty(); }
};

/// Runs `rounds` randomized equivalence rounds (each round draws an
/// arity, a pair of random tables, and checks the full op set). Never
/// throws on a finding — mismatches come back in the report.
KernelCheckReport check_kernels(int rounds, std::uint64_t seed,
                                std::ostream* log = nullptr);

}  // namespace chortle::fuzz
