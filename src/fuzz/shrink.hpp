// Greedy counterexample shrinking: given a fuzz case the oracle
// rejects, repeatedly try structure-reducing edits (drop an output,
// collapse a gate to a constant or to one of its fanins, drop a cube,
// drop a literal, discard dead inputs) and keep any edit after which
// the oracle still reports the *same* failure (stage and kind), so a
// miscompile cannot quietly morph into an unrelated crash while
// shrinking. The result is the minimal network delta-debugging can
// reach — typically a handful of gates — ready to be written into the
// regression corpus.
#pragma once

#include "fuzz/fuzz_case.hpp"
#include "fuzz/oracle.hpp"

namespace chortle::fuzz {

struct ShrinkOptions {
  /// Hard cap on oracle re-runs, the expensive step.
  int max_attempts = 2000;
};

struct ShrinkResult {
  /// The minimized case (same mapper options and backends as the input).
  FuzzCase fuzz_case;
  /// The oracle's verdict on the minimized case (still failing).
  Verdict verdict;
  int attempts = 0;  // oracle evaluations spent
  int accepted = 0;  // edits that kept the failure and shrank the case
};

/// Minimizes `failing` (whose verdict under `oracle_options` must have
/// at least one failure; throws InvalidInput otherwise).
ShrinkResult shrink(const FuzzCase& failing,
                    const OracleOptions& oracle_options,
                    const ShrinkOptions& options = {});

}  // namespace chortle::fuzz
