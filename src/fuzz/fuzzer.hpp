// The fuzz loop: sample a case, run the differential oracle, and on any
// failure shrink the network to a minimal counterexample and write it
// into the regression corpus. Fully deterministic for a given seed and
// run count; the time budget only cuts the loop short (it never changes
// what run N does), so "--runs N --seed S" names a reproducible
// experiment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"

namespace chortle::fuzz {

struct FuzzOptions {
  int runs = 100;
  std::uint64_t seed = 1;
  /// Stop starting new runs after this many seconds (0 = no budget).
  double time_budget_seconds = 0.0;
  /// Mapper worker threads forced onto every sampled case (see
  /// Options::jobs; 0 = auto). Verdicts are jobs-invariant — the
  /// mapping is byte-identical for any value — so this exists to drive
  /// the parallel solve path under the differential oracle, not to
  /// change what is tested.
  int jobs = 0;
  /// Backends every sampled case is cross-checked under (the
  /// fuzz_mapper --mapper flag narrows this to a single backend).
  std::vector<Backend> backends = all_backends();
  /// Generator sizing (smoke runs use small cases).
  GeneratorOptions generator;
  /// Forwarded to every oracle call (carries the fault injection).
  OracleOptions oracle;
  ShrinkOptions shrinker;
  bool shrink_failures = true;
  /// Directory that receives shrunk reproducers ("" = don't write).
  std::string corpus_dir;
  /// Progress/failure log (nullptr = silent).
  std::ostream* log = nullptr;
};

struct RunFailure {
  int run = 0;
  std::string description;      // generator parameters of the case
  Verdict verdict;              // verdict on the original case
  FuzzCase shrunk;              // minimized counterexample
  Verdict shrunk_verdict;
  std::string reproducer_path;  // "" when no corpus_dir was given
};

struct FuzzReport {
  int runs_completed = 0;
  std::vector<RunFailure> failures;
  double seconds = 0.0;
  bool ok() const { return failures.empty(); }
};

/// Runs the loop. Never throws on a finding — failures come back in the
/// report (and as corpus files).
FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace chortle::fuzz
