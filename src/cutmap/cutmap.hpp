// Priority-cuts LUT mapping over the 2-input subject graph — the
// delay-driven counterpart of the area-driven Chortle mapper, built in
// the style of ABC's if-mapper. Every node keeps a small sorted set of
// K-feasible cuts (plus the trivial self-cut), enumerated bottom-up by
// merging the fanin cut sets; cut functions are carried as bit-parallel
// truth::PackedTable values so support minimization and Boolean
// classification are word ops, not graph walks.
//
// Depth is exact by construction: the FlowMap labeling phase
// (flowmap/flowmap.hpp) computes the provably optimal depth label for
// every node first, and whenever the priority heuristic's best cut for
// a node misses its label, the recorded FlowMap cut is inserted as a
// repair candidate — so the mapped depth never exceeds the optimum.
// After the depth-oriented first pass, selection-only area-recovery
// passes (area flow, then exact area with reference counting) shrink
// the cover under required times that hold the depth bound.
//
// Wide AND/OR chains get one extra trick the K-feasible enumeration
// cannot see: a merged cut of K+1..K+2 leaves whose function is a cube
// (AND of literals) or the complement of one (OR of literals) is kept
// as a two-LUT cascade — the earliest-arriving leaves feed the first
// LUT — which can beat the best K-feasible depth at the node.
#pragma once

#include <cstdint>

#include "base/cancel.hpp"
#include "network/lut_circuit.hpp"
#include "network/network.hpp"

namespace chortle::cutmap {

struct CutMapOptions {
  /// Largest supported LUT input count. One above Chortle's K <= 6: the
  /// cascade decomposition and the PackedTable kernels are sized for
  /// the K=7 architecture sweep.
  static constexpr int kMaxK = 7;

  /// LUT input count K, in [2, kMaxK].
  int k = 6;

  /// Priority cuts kept per node (the trivial self-cut rides along for
  /// free). In [2, 32]; 8 is the classical sweet spot.
  int cut_limit = 8;

  /// Area-recovery passes after the depth-oriented first pass: pass one
  /// minimizes area flow, later passes exact area via reference
  /// counting. In [0, 8]; the depth bound is held throughout.
  int area_iterations = 2;

  /// Keep chain-decomposable cuts of K+1..K+2 leaves as two-LUT
  /// cascades when they beat every K-feasible cut's depth.
  bool decompose_chains = true;

  /// Optional cooperative cancellation, polled inside the cut
  /// enumeration loop (see base/cancel.hpp). Must outlive the call;
  /// nullptr disables polling.
  const base::CancelToken* cancel = nullptr;

  void validate() const;
};

struct CutMapStats {
  int num_luts = 0;
  int depth = 0;        // LUT depth of the emitted circuit
  int depth_bound = 0;  // FlowMap-optimal label (depth <= depth_bound)
  int first_pass_luts = 0;  // cover area after the depth-only pass
  int decomposed_luts = 0;  // cascades in the final cover
  int repair_cuts = 0;      // FlowMap cuts inserted to hold the bound
  std::uint64_t cuts_enumerated = 0;
  double seconds = 0.0;
};

struct CutMapResult {
  net::LutCircuit circuit;
  CutMapStats stats;
};

/// Maps a 2-bounded network (every gate fanin <= 2; see
/// libmap/subject.hpp for the canonical construction) into K-input
/// LUTs at the FlowMap-optimal depth, then recovers area. Throws
/// InvalidInput when a gate has more than two fanins and
/// base::Cancelled when options.cancel fires mid-enumeration.
CutMapResult map_luts(const net::Network& subject,
                      const CutMapOptions& options);

}  // namespace chortle::cutmap
