#include "cutmap/cutmap.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>
#include <vector>

#include "base/check.hpp"
#include "base/timer.hpp"
#include "flowmap/flowmap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "truth/packed.hpp"

namespace chortle::cutmap {
namespace {

constexpr int kMaxCutLeaves = CutMapOptions::kMaxK + 2;
constexpr int kInfRequired = std::numeric_limits<int>::max() / 2;

/// One K-feasible cut (or two-LUT cascade candidate) of a node. Leaves
/// are sorted by node id; the function is over the leaves with variable
/// i = leaves[i]. Cut sets are immutable once enumeration finishes —
/// the area passes only change which index is selected.
struct Cut {
  std::array<net::NodeId, kMaxCutLeaves> leaves{};
  int num_leaves = 0;
  std::uint64_t sig = 0;  // OR of 1 << (leaf % 64): fast subset filter
  truth::PackedTable func;

  // Chain decomposition (cube / complement-of-cube cuts wider than K).
  // Leaf i carries literal (neg_mask bit i ? ~x : x); bits of
  // early_mask pick the leaves of the first cascade LUT. The split is
  // fixed at enumeration time from the first-pass arrival times.
  bool decomposed = false;
  bool is_or = false;  // OR of literals (complement of a cube) vs AND
  std::uint16_t neg_mask = 0;
  std::uint16_t early_mask = 0;

  int area() const { return decomposed ? 2 : 1; }

  bool subset_of(const Cut& other) const {
    if ((sig & ~other.sig) != 0) return false;
    int j = 0;
    for (int i = 0; i < num_leaves; ++i) {
      while (j < other.num_leaves && other.leaves[static_cast<std::size_t>(
                                         j)] < leaves[static_cast<std::size_t>(
                                                  i)])
        ++j;
      if (j == other.num_leaves ||
          other.leaves[static_cast<std::size_t>(j)] !=
              leaves[static_cast<std::size_t>(i)])
        return false;
    }
    return true;
  }
};

/// Per-node mapping state. `cuts` ends with the trivial self-cut for
/// gates (never selectable as the node's own implementation; it exists
/// so parents can use the node as a leaf).
struct NodeState {
  std::vector<Cut> cuts;
  int selected = -1;
  int arrival = 0;
  double area_flow = 0.0;
  int est_refs = 1;   // structural fanout, clamped to >= 1
  int map_refs = 0;   // exact-area pass reference counts
};

/// True when `func` (over `w` > K vars) is an AND or OR chain of
/// literals; fills the literal polarities.
bool classify_chain(const truth::PackedTable& func, int w, bool* is_or,
                    std::uint16_t* neg_mask) {
  const std::uint64_t ones = func.count_ones();
  if (ones == 1) {
    // Cube: literal i is positive iff bit i of the unique minterm is 1.
    std::uint64_t minterm = 0;
    for (int i = 0; i < func.num_words(); ++i) {
      const std::uint64_t word = func.words()[static_cast<std::size_t>(i)];
      if (word != 0) {
        minterm = static_cast<std::uint64_t>(i) * 64 +
                  static_cast<std::uint64_t>(std::countr_zero(word));
        break;
      }
    }
    *is_or = false;
    *neg_mask = static_cast<std::uint16_t>(~minterm &
                                           ((std::uint64_t{1} << w) - 1));
    return true;
  }
  if (ones == func.num_minterms() - 1) {
    // Complement of a cube, i.e. OR of literals: literal i is negated
    // iff bit i of the unique zero-minterm is 1.
    const truth::PackedTable complement = ~func;
    std::uint64_t minterm = 0;
    for (int i = 0; i < complement.num_words(); ++i) {
      const std::uint64_t word =
          complement.words()[static_cast<std::size_t>(i)];
      if (word != 0) {
        minterm = static_cast<std::uint64_t>(i) * 64 +
                  static_cast<std::uint64_t>(std::countr_zero(word));
        break;
      }
    }
    *is_or = true;
    *neg_mask = static_cast<std::uint16_t>(minterm);
    return true;
  }
  return false;
}

/// The AND/OR-of-literals function the cascade of a decomposed cut
/// computes, for the emission-time equivalence check.
truth::PackedTable chain_function(int num_vars, bool is_or,
                                  std::uint16_t neg_mask) {
  truth::PackedTable acc = is_or ? truth::PackedTable::zeros(num_vars)
                                 : truth::PackedTable::ones(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    truth::PackedTable lit = truth::PackedTable::var(i, num_vars);
    if ((neg_mask >> i) & 1) lit = ~lit;
    if (is_or)
      acc |= lit;
    else
      acc &= lit;
  }
  return acc;
}

class CutMapper {
 public:
  CutMapper(const net::Network& subject, const CutMapOptions& options)
      : network_(subject), options_(options) {
    options.validate();
    if (const auto violation = flowmap::validate_k_bounded(subject, 2))
      throw InvalidInput("cutmap needs a 2-input subject graph: " +
                         violation->message());
  }

  CutMapResult run() {
    OBS_SPAN_ARG("cutmap.map", network_.num_nodes());
    WallTimer timer;
    const std::size_t n = static_cast<std::size_t>(network_.num_nodes());
    labels_ = flowmap::flowmap_labels(network_, options_.k);
    state_.assign(n, NodeState{});
    const std::vector<int> refs = network_.reference_counts();
    for (std::size_t i = 0; i < n; ++i)
      state_[i].est_refs = std::max(1, refs[i]);

    enumerate();
    depth_target_ = cover_depth();
    CHORTLE_CHECK_MSG(depth_target_ <= labels_.depth,
                      "cutmap depth exceeds the FlowMap-optimal bound");

    CutMapResult result{net::LutCircuit(options_.k), CutMapStats{}};
    result.stats.first_pass_luts = cover_area();
    // Each recovery pass is advisory: the area-flow estimate can
    // misjudge shared logic and leave a worse cover than it started
    // with, so a pass that increased the cover area is rolled back.
    // This makes num_luts <= first_pass_luts an invariant rather than
    // a tendency.
    struct Selection {
      int selected;
      int arrival;
      double area_flow;
    };
    std::vector<Selection> saved(state_.size());
    int best_area = result.stats.first_pass_luts;
    for (int pass = 0; pass < options_.area_iterations; ++pass) {
      for (std::size_t i = 0; i < state_.size(); ++i)
        saved[i] = {state_[i].selected, state_[i].arrival,
                    state_[i].area_flow};
      compute_required();
      if (pass == 0)
        area_flow_pass();
      else
        exact_area_pass();
      CHORTLE_CHECK_MSG(cover_depth() <= depth_target_,
                        "area recovery broke the depth bound");
      const int area = cover_area();
      if (area > best_area) {
        for (std::size_t i = 0; i < state_.size(); ++i) {
          state_[i].selected = saved[i].selected;
          state_[i].arrival = saved[i].arrival;
          state_[i].area_flow = saved[i].area_flow;
        }
      } else {
        best_area = area;
      }
    }

    emit(result.circuit);
    result.stats.num_luts = result.circuit.num_luts();
    result.stats.depth = result.circuit.depth();
    result.stats.depth_bound = labels_.depth;
    result.stats.repair_cuts = repair_cuts_;
    result.stats.cuts_enumerated = cuts_enumerated_;
    result.stats.decomposed_luts = count_decomposed_in_cover();
    result.stats.seconds = timer.seconds();
    CHORTLE_CHECK_MSG(result.stats.depth <= labels_.depth,
                      "emitted circuit exceeds the FlowMap-optimal depth");
    OBS_COUNT("cutmap.networks", 1);
    OBS_COUNT("cutmap.cuts_enumerated", cuts_enumerated_);
    OBS_COUNT("cutmap.repair_cuts", repair_cuts_);
    OBS_COUNT("cutmap.decomposed_luts", result.stats.decomposed_luts);
    OBS_COUNT("cutmap.luts", result.stats.num_luts);
    return result;
  }

 private:
  NodeState& state(net::NodeId v) {
    return state_[static_cast<std::size_t>(v)];
  }
  const Cut& selected_cut(net::NodeId v) const {
    const NodeState& s = state_[static_cast<std::size_t>(v)];
    return s.cuts[static_cast<std::size_t>(s.selected)];
  }
  int arrival(net::NodeId v) const {
    return state_[static_cast<std::size_t>(v)].arrival;
  }

  /// Arrival time of `cut` under the current per-node arrivals: one
  /// level above the latest leaf, or the cascade formula (early leaves
  /// pass through two LUTs) for decomposed cuts.
  int cut_arrival(const Cut& cut) const {
    if (!cut.decomposed) {
      int latest = 0;
      for (int i = 0; i < cut.num_leaves; ++i)
        latest = std::max(latest,
                          arrival(cut.leaves[static_cast<std::size_t>(i)]));
      return latest + 1;
    }
    int early = 0;
    int late = 0;
    for (int i = 0; i < cut.num_leaves; ++i) {
      const int a = arrival(cut.leaves[static_cast<std::size_t>(i)]);
      if ((cut.early_mask >> i) & 1)
        early = std::max(early, a);
      else
        late = std::max(late, a);
    }
    return std::max(early + 2, late + 1);
  }

  double cut_area_flow(net::NodeId v, const Cut& cut) const {
    double flow = cut.area();
    for (int i = 0; i < cut.num_leaves; ++i)
      flow += state_[static_cast<std::size_t>(
                         cut.leaves[static_cast<std::size_t>(i)])]
                  .area_flow;
    return flow / state_[static_cast<std::size_t>(v)].est_refs;
  }

  /// Deterministic tie-break of last resort: lexicographic leaf lists.
  static bool leaves_less(const Cut& a, const Cut& b) {
    const int n = std::min(a.num_leaves, b.num_leaves);
    for (int i = 0; i < n; ++i) {
      const std::size_t j = static_cast<std::size_t>(i);
      if (a.leaves[j] != b.leaves[j]) return a.leaves[j] < b.leaves[j];
    }
    return a.num_leaves < b.num_leaves;
  }

  // --- Cut enumeration -------------------------------------------------

  void enumerate() {
    OBS_SPAN_ARG("cutmap.enumerate", network_.num_nodes());
    for (net::NodeId pi : network_.inputs()) {
      NodeState& s = state(pi);
      s.cuts.push_back(trivial_cut(pi));
      s.selected = 0;  // never emitted; keeps selected_cut() total
      s.arrival = 0;
      s.area_flow = 0.0;
    }
    for (net::NodeId v : network_.gates_in_topo_order()) {
      if (options_.cancel) options_.cancel->check("cutmap.enumerate");
      enumerate_node(v);
    }
  }

  static Cut trivial_cut(net::NodeId v) {
    Cut cut;
    cut.leaves[0] = v;
    cut.num_leaves = 1;
    cut.sig = std::uint64_t{1} << (v & 63);
    cut.func = truth::PackedTable::var(0, 1);
    return cut;
  }

  /// Sorted-union merge of two leaf lists; false when the union
  /// exceeds `max_leaves`. Also records, for each input cut, where its
  /// leaves land in the merged list (the expanded() position maps).
  static bool merge_leaves(const Cut& a, const Cut& b, int max_leaves,
                           Cut* merged, int* pos_a, int* pos_b) {
    int i = 0;
    int j = 0;
    int out = 0;
    while (i < a.num_leaves || j < b.num_leaves) {
      if (out == max_leaves) return false;
      const bool take_a =
          j == b.num_leaves ||
          (i < a.num_leaves && a.leaves[static_cast<std::size_t>(i)] <=
                                   b.leaves[static_cast<std::size_t>(j)]);
      if (take_a) {
        const net::NodeId leaf = a.leaves[static_cast<std::size_t>(i)];
        pos_a[i++] = out;
        if (j < b.num_leaves &&
            b.leaves[static_cast<std::size_t>(j)] == leaf)
          pos_b[j++] = out;
        merged->leaves[static_cast<std::size_t>(out++)] = leaf;
      } else {
        pos_b[j] = out;
        merged->leaves[static_cast<std::size_t>(out++)] =
            b.leaves[static_cast<std::size_t>(j++)];
      }
    }
    merged->num_leaves = out;
    merged->sig = a.sig | b.sig;
    return true;
  }

  /// Drops non-support leaves from `cut` (keeps at least one so the
  /// emitted LUT has an input even for a constant cone function).
  void minimize_support(Cut* cut) const {
    int keep[kMaxCutLeaves];
    int num_keep = 0;
    for (int i = 0; i < cut->num_leaves; ++i)
      if (cut->func.depends_on(i)) keep[num_keep++] = i;
    if (num_keep == cut->num_leaves) return;
    if (num_keep == 0) keep[num_keep++] = 0;
    cut->func = cut->func.compressed(keep, num_keep);
    cut->sig = 0;
    for (int i = 0; i < num_keep; ++i) {
      cut->leaves[static_cast<std::size_t>(i)] =
          cut->leaves[static_cast<std::size_t>(keep[i])];
      cut->sig |= std::uint64_t{1}
                  << (cut->leaves[static_cast<std::size_t>(i)] & 63);
    }
    cut->num_leaves = num_keep;
  }

  /// Fixes the cascade split of a wide chain cut: the earliest-arriving
  /// leaves feed the first LUT. Returns false when no feasible split
  /// exists (it always does for K+1..K+2 leaves and K >= 3).
  bool plan_cascade(Cut* cut) const {
    const int w = cut->num_leaves;
    const int k = options_.k;
    // First-LUT size g: the second LUT takes the cascade signal plus
    // the remaining w-g leaves, so g >= w-k+1; and g <= k, g >= 2,
    // with at least one late leaf (g <= w-1).
    const int g_min = std::max(2, w - k + 1);
    const int g_max = std::min(k, w - 1);
    if (g_min > g_max) return false;
    int order[kMaxCutLeaves];
    for (int i = 0; i < w; ++i) order[i] = i;
    std::sort(order, order + w, [&](int x, int y) {
      const int ax = arrival(cut->leaves[static_cast<std::size_t>(x)]);
      const int ay = arrival(cut->leaves[static_cast<std::size_t>(y)]);
      if (ax != ay) return ax < ay;
      return x < y;
    });
    int best_g = -1;
    int best_depth = kInfRequired;
    for (int g = g_min; g <= g_max; ++g) {
      const int early =
          arrival(cut->leaves[static_cast<std::size_t>(order[g - 1])]);
      const int late =
          arrival(cut->leaves[static_cast<std::size_t>(order[w - 1])]);
      const int depth = std::max(early + 2, late + 1);
      if (depth < best_depth) {
        best_depth = depth;
        best_g = g;
      }
    }
    cut->decomposed = true;
    cut->early_mask = 0;
    for (int i = 0; i < best_g; ++i)
      cut->early_mask |= static_cast<std::uint16_t>(1 << order[i]);
    return true;
  }

  /// Inserts `cut` into `set` unless a kept cut dominates it (subset
  /// leaves, no worse arrival or area); evicts kept cuts it dominates.
  void insert_cut(std::vector<Cut>& set, Cut cut) const {
    const int a = cut_arrival(cut);
    for (const Cut& kept : set) {
      if (kept.subset_of(cut) && cut_arrival(kept) <= a &&
          kept.area() <= cut.area())
        return;
    }
    std::erase_if(set, [&](const Cut& kept) {
      return cut.subset_of(kept) && a <= cut_arrival(kept) &&
             cut.area() <= kept.area();
    });
    set.push_back(std::move(cut));
  }

  void enumerate_node(net::NodeId v) {
    const net::Network::Node& node = network_.node(v);
    CHORTLE_CHECK(node.fanins.size() == 2);
    const net::Fanin fa = node.fanins[0];
    const net::Fanin fb = node.fanins[1];
    const bool is_and = node.op == net::GateOp::kAnd;
    const int max_leaves =
        options_.decompose_chains ? options_.k + 2 : options_.k;

    std::vector<Cut> cands;
    std::uint64_t polls = 0;
    for (const Cut& ca : state(fa.node).cuts) {
      for (const Cut& cb : state(fb.node).cuts) {
        // Poll the cancel token at the same coarse stride as the tree
        // DP so a deadline aborts mid-enumeration, not per-network.
        if (options_.cancel && (++polls & 0xFF) == 0)
          options_.cancel->check("cutmap.enumerate");
        ++cuts_enumerated_;
        if (std::popcount(ca.sig | cb.sig) > max_leaves) continue;
        Cut merged;
        int pos_a[kMaxCutLeaves];
        int pos_b[kMaxCutLeaves];
        if (!merge_leaves(ca, cb, max_leaves, &merged, pos_a, pos_b))
          continue;
        truth::PackedTable ta =
            ca.func.expanded(pos_a, merged.num_leaves);
        truth::PackedTable tb =
            cb.func.expanded(pos_b, merged.num_leaves);
        if (fa.negated) ta = ~ta;
        if (fb.negated) tb = ~tb;
        merged.func = is_and ? ta & tb : ta | tb;
        minimize_support(&merged);
        if (merged.num_leaves > options_.k) {
          if (!classify_chain(merged.func, merged.num_leaves,
                              &merged.is_or, &merged.neg_mask))
            continue;
          if (!plan_cascade(&merged)) continue;
        }
        insert_cut(cands, std::move(merged));
      }
    }
    CHORTLE_CHECK(!cands.empty());

    // A cascade costs two LUTs; it earns its slot only by strictly
    // beating every single-LUT cut's depth.
    int best_single = kInfRequired;
    for (const Cut& cut : cands)
      if (!cut.decomposed) best_single = std::min(best_single,
                                                  cut_arrival(cut));
    std::erase_if(cands, [&](const Cut& cut) {
      return cut.decomposed && cut_arrival(cut) >= best_single;
    });

    // Exactness repair: when the heuristic cut set misses the node's
    // FlowMap label, adopt the labeler's own cut (its leaves all carry
    // strictly smaller labels, so its arrival meets the label).
    int best_depth = kInfRequired;
    for (const Cut& cut : cands)
      best_depth = std::min(best_depth, cut_arrival(cut));
    const int label = labels_.label[static_cast<std::size_t>(v)];
    if (best_depth > label) {
      Cut repair = flowmap_cut(v);
      CHORTLE_CHECK_MSG(cut_arrival(repair) <= label,
                        "FlowMap repair cut misses its own label");
      ++repair_cuts_;
      insert_cut(cands, std::move(repair));
    }

    // Keep the best cut_limit cuts; ordering mixes depth and area flow
    // so area candidates survive the cap.
    std::sort(cands.begin(), cands.end(), [&](const Cut& a, const Cut& b) {
      const int da = cut_arrival(a);
      const int db = cut_arrival(b);
      if (da != db) return da < db;
      const double aa = cut_area_flow(v, a);
      const double ab = cut_area_flow(v, b);
      if (aa != ab) return aa < ab;
      if (a.num_leaves != b.num_leaves) return a.num_leaves < b.num_leaves;
      return leaves_less(a, b);
    });
    if (static_cast<int>(cands.size()) > options_.cut_limit)
      cands.resize(static_cast<std::size_t>(options_.cut_limit));

    NodeState& s = state(v);
    s.cuts = std::move(cands);
    select_depth_only(v);
    s.cuts.push_back(trivial_cut(v));
  }

  /// First-pass selection: pure depth, smallest cut on ties (no area
  /// term — the recovery passes measure their win against this).
  void select_depth_only(net::NodeId v) {
    NodeState& s = state(v);
    int best = -1;
    int best_arrival = kInfRequired;
    int best_size = kMaxCutLeaves + 1;
    for (std::size_t i = 0; i < s.cuts.size(); ++i) {
      const Cut& cut = s.cuts[i];
      if (cut.num_leaves == 1 && cut.leaves[0] == v) continue;
      const int a = cut_arrival(cut);
      if (a < best_arrival ||
          (a == best_arrival && cut.num_leaves < best_size)) {
        best = static_cast<int>(i);
        best_arrival = a;
        best_size = cut.num_leaves;
      }
    }
    CHORTLE_CHECK(best >= 0);
    s.selected = best;
    s.arrival = best_arrival;
    s.area_flow =
        cut_area_flow(v, s.cuts[static_cast<std::size_t>(best)]);
  }

  /// The labeling phase's own depth-optimal cut for `v`, with its cone
  /// function evaluated over PackedTables.
  Cut flowmap_cut(net::NodeId v) const {
    const std::vector<net::NodeId>& leaves =
        labels_.cut_of[static_cast<std::size_t>(v)];
    const int arity = static_cast<int>(leaves.size());
    CHORTLE_CHECK(arity >= 1 && arity <= options_.k);
    Cut cut;
    cut.num_leaves = arity;
    for (int i = 0; i < arity; ++i) {
      cut.leaves[static_cast<std::size_t>(i)] =
          leaves[static_cast<std::size_t>(i)];
      cut.sig |= std::uint64_t{1}
                 << (leaves[static_cast<std::size_t>(i)] & 63);
    }
    cut.func = cone_function(v, leaves);
    minimize_support(&cut);
    return cut;
  }

  /// Evaluates the cone of `t` over `cut` (variable i = cut[i]) with
  /// word-parallel tables; mirrors flowmap's TruthTable walk.
  truth::PackedTable cone_function(
      net::NodeId t, const std::vector<net::NodeId>& cut) const {
    const int arity = static_cast<int>(cut.size());
    std::vector<net::NodeId> interior;
    std::vector<bool> seen(static_cast<std::size_t>(network_.num_nodes()),
                           false);
    for (net::NodeId v : cut) seen[static_cast<std::size_t>(v)] = true;
    std::vector<net::NodeId> stack{t};
    if (!seen[static_cast<std::size_t>(t)]) {
      seen[static_cast<std::size_t>(t)] = true;
      interior.push_back(t);
    }
    while (!stack.empty()) {
      const net::NodeId v = stack.back();
      stack.pop_back();
      if (std::find(cut.begin(), cut.end(), v) != cut.end()) continue;
      for (const net::Fanin& f : network_.node(v).fanins)
        if (!seen[static_cast<std::size_t>(f.node)]) {
          seen[static_cast<std::size_t>(f.node)] = true;
          interior.push_back(f.node);
          stack.push_back(f.node);
        }
    }
    std::sort(interior.begin(), interior.end());
    std::vector<int> index(static_cast<std::size_t>(network_.num_nodes()),
                           -1);
    std::vector<truth::PackedTable> value;
    value.reserve(cut.size() + interior.size());
    for (int i = 0; i < arity; ++i) {
      index[static_cast<std::size_t>(cut[static_cast<std::size_t>(i)])] =
          static_cast<int>(value.size());
      value.push_back(truth::PackedTable::var(i, arity));
    }
    for (net::NodeId v : interior) {
      const net::Network::Node& node = network_.node(v);
      CHORTLE_CHECK_MSG(!network_.is_input(v),
                        "cone interior reached a primary input; bad cut");
      const bool is_and = node.op == net::GateOp::kAnd;
      truth::PackedTable acc = is_and ? truth::PackedTable::ones(arity)
                                      : truth::PackedTable::zeros(arity);
      for (const net::Fanin& f : node.fanins) {
        const int fi = index[static_cast<std::size_t>(f.node)];
        CHORTLE_CHECK(fi >= 0);
        truth::PackedTable fv = value[static_cast<std::size_t>(fi)];
        if (f.negated) fv = ~fv;
        if (is_and)
          acc &= fv;
        else
          acc |= fv;
      }
      index[static_cast<std::size_t>(v)] = static_cast<int>(value.size());
      value.push_back(std::move(acc));
    }
    return value[static_cast<std::size_t>(
        index[static_cast<std::size_t>(t)])];
  }

  // --- Cover bookkeeping ----------------------------------------------

  /// Marks the nodes the current selection actually implements and
  /// calls `visit(v)` for each (descending id order — leaves always
  /// precede their users, so one sweep suffices).
  template <typename Visit>
  void walk_cover(Visit&& visit) const {
    std::vector<bool> needed(static_cast<std::size_t>(network_.num_nodes()),
                             false);
    for (const net::Output& o : network_.outputs())
      if (!o.is_const && !network_.is_input(o.node))
        needed[static_cast<std::size_t>(o.node)] = true;
    for (net::NodeId v = network_.num_nodes() - 1; v >= 0; --v) {
      if (!needed[static_cast<std::size_t>(v)] || network_.is_input(v))
        continue;
      visit(v);
      const Cut& cut = selected_cut(v);
      for (int i = 0; i < cut.num_leaves; ++i)
        needed[static_cast<std::size_t>(
            cut.leaves[static_cast<std::size_t>(i)])] = true;
    }
  }

  int cover_depth() const {
    int depth = 0;
    for (const net::Output& o : network_.outputs())
      if (!o.is_const && !network_.is_input(o.node))
        depth = std::max(depth, arrival(o.node));
    return depth;
  }

  int cover_area() const {
    int area = 0;
    walk_cover([&](net::NodeId v) { area += selected_cut(v).area(); });
    return area;
  }

  int count_decomposed_in_cover() const {
    int count = 0;
    walk_cover([&](net::NodeId v) {
      if (selected_cut(v).decomposed) ++count;
    });
    return count;
  }

  /// Required times over the current cover, anchored at the depth
  /// target: leaves of a selected cut must settle one level earlier
  /// (two for the early leaves of a cascade). Nodes outside the cover
  /// are unconstrained.
  void compute_required() {
    required_.assign(static_cast<std::size_t>(network_.num_nodes()),
                     kInfRequired);
    for (const net::Output& o : network_.outputs())
      if (!o.is_const && !network_.is_input(o.node))
        required_[static_cast<std::size_t>(o.node)] = depth_target_;
    walk_cover([&](net::NodeId v) {
      const int r = required_[static_cast<std::size_t>(v)];
      CHORTLE_CHECK_MSG(arrival(v) <= r, "cover node misses required time");
      const Cut& cut = selected_cut(v);
      for (int i = 0; i < cut.num_leaves; ++i) {
        const int slack = cut.decomposed && ((cut.early_mask >> i) & 1)
                              ? 2
                              : 1;
        int& leaf_required = required_[static_cast<std::size_t>(
            cut.leaves[static_cast<std::size_t>(i)])];
        leaf_required = std::min(leaf_required, r - slack);
      }
    });
  }

  // --- Area recovery (selection only; cut sets stay fixed) ------------

  void area_flow_pass() {
    OBS_SPAN("cutmap.area_flow");
    for (net::NodeId v : network_.gates_in_topo_order()) {
      NodeState& s = state(v);
      int best = -1;
      double best_flow = 0.0;
      int best_arrival = 0;
      for (std::size_t i = 0; i < s.cuts.size(); ++i) {
        const Cut& cut = s.cuts[i];
        if (cut.num_leaves == 1 && cut.leaves[0] == v) continue;
        const int a = cut_arrival(cut);
        if (a > required_[static_cast<std::size_t>(v)]) continue;
        const double flow = cut_area_flow(v, cut);
        if (best < 0 || flow < best_flow ||
            (flow == best_flow && a < best_arrival) ||
            (flow == best_flow && a == best_arrival &&
             leaves_less(cut,
                         s.cuts[static_cast<std::size_t>(best)]))) {
          best = static_cast<int>(i);
          best_flow = flow;
          best_arrival = a;
        }
      }
      CHORTLE_CHECK_MSG(best >= 0, "no cut meets the required time");
      s.selected = best;
      s.arrival = best_arrival;
      s.area_flow = best_flow;
    }
  }

  /// Adds a reference to `v`'s selected cut, activating newly needed
  /// leaves recursively; returns the LUT area brought into the cover.
  int ref_selected(net::NodeId v) {
    const Cut& cut = selected_cut(v);
    int area = cut.area();
    for (int i = 0; i < cut.num_leaves; ++i) {
      const net::NodeId leaf = cut.leaves[static_cast<std::size_t>(i)];
      if (network_.is_input(leaf)) continue;
      if (state(leaf).map_refs++ == 0) area += ref_selected(leaf);
    }
    return area;
  }

  int deref_selected(net::NodeId v) {
    const Cut& cut = selected_cut(v);
    int area = cut.area();
    for (int i = 0; i < cut.num_leaves; ++i) {
      const net::NodeId leaf = cut.leaves[static_cast<std::size_t>(i)];
      if (network_.is_input(leaf)) continue;
      CHORTLE_CHECK(state(leaf).map_refs > 0);
      if (--state(leaf).map_refs == 0) area += deref_selected(leaf);
    }
    return area;
  }

  /// Exact area of adopting `cut` at `v`, measured by trial reference
  /// insertion (the ABC cut_ref/cut_deref trick): the LUTs that would
  /// join the cover, no estimate involved.
  int probe_exact_area(net::NodeId v, std::size_t cut_index) {
    NodeState& s = state(v);
    const int previous = s.selected;
    s.selected = static_cast<int>(cut_index);
    const int area = ref_selected(v);
    const int back = deref_selected(v);
    CHORTLE_CHECK(back == area);
    s.selected = previous;
    return area;
  }

  void exact_area_pass() {
    OBS_SPAN("cutmap.exact_area");
    for (std::size_t i = 0; i < state_.size(); ++i) state_[i].map_refs = 0;
    // Seed reference counts from the current cover.
    {
      std::vector<bool> needed(
          static_cast<std::size_t>(network_.num_nodes()), false);
      for (const net::Output& o : network_.outputs())
        if (!o.is_const && !network_.is_input(o.node)) {
          needed[static_cast<std::size_t>(o.node)] = true;
          ++state(o.node).map_refs;
        }
      for (net::NodeId v = network_.num_nodes() - 1; v >= 0; --v) {
        if (!needed[static_cast<std::size_t>(v)] || network_.is_input(v))
          continue;
        const Cut& cut = selected_cut(v);
        for (int i = 0; i < cut.num_leaves; ++i) {
          const net::NodeId leaf =
              cut.leaves[static_cast<std::size_t>(i)];
          needed[static_cast<std::size_t>(leaf)] = true;
          if (!network_.is_input(leaf)) ++state(leaf).map_refs;
        }
      }
    }
    for (net::NodeId v : network_.gates_in_topo_order()) {
      NodeState& s = state(v);
      const bool referenced = s.map_refs > 0;
      // Lift this node's current cut out of the cover so the probes
      // measure each candidate against the cover without it.
      if (referenced) deref_selected(v);
      int best = -1;
      int best_area = 0;
      int best_arrival = 0;
      for (std::size_t i = 0; i < s.cuts.size(); ++i) {
        const Cut& cut = s.cuts[i];
        if (cut.num_leaves == 1 && cut.leaves[0] == v) continue;
        const int a = cut_arrival(cut);
        if (a > required_[static_cast<std::size_t>(v)]) continue;
        const int area = probe_exact_area(v, i);
        if (best < 0 || area < best_area ||
            (area == best_area && a < best_arrival) ||
            (area == best_area && a == best_arrival &&
             leaves_less(cut,
                         s.cuts[static_cast<std::size_t>(best)]))) {
          best = static_cast<int>(i);
          best_area = area;
          best_arrival = a;
        }
      }
      CHORTLE_CHECK_MSG(best >= 0, "no cut meets the required time");
      s.selected = best;
      s.arrival = best_arrival;
      if (referenced) ref_selected(v);
    }
  }

  // --- Emission ---------------------------------------------------------

  void emit(net::LutCircuit& circuit) const {
    std::vector<net::SignalId> signal_of(
        static_cast<std::size_t>(network_.num_nodes()), -1);
    for (net::NodeId pi : network_.inputs())
      signal_of[static_cast<std::size_t>(pi)] =
          circuit.add_input(network_.node(pi).name);

    std::vector<bool> needed(static_cast<std::size_t>(network_.num_nodes()),
                             false);
    for (const net::Output& o : network_.outputs())
      if (!o.is_const && !network_.is_input(o.node))
        needed[static_cast<std::size_t>(o.node)] = true;
    for (net::NodeId v = network_.num_nodes() - 1; v >= 0; --v) {
      if (!needed[static_cast<std::size_t>(v)] || network_.is_input(v))
        continue;
      const Cut& cut = selected_cut(v);
      for (int i = 0; i < cut.num_leaves; ++i)
        needed[static_cast<std::size_t>(
            cut.leaves[static_cast<std::size_t>(i)])] = true;
    }

    for (net::NodeId v = 0; v < network_.num_nodes(); ++v) {
      if (!needed[static_cast<std::size_t>(v)] || network_.is_input(v))
        continue;
      const Cut& cut = selected_cut(v);
      signal_of[static_cast<std::size_t>(v)] =
          cut.decomposed ? emit_cascade(circuit, v, cut, signal_of)
                         : emit_single(circuit, v, cut, signal_of);
    }
    for (const net::Output& o : network_.outputs()) {
      if (o.is_const) {
        circuit.add_const_output(o.name, o.const_value);
        continue;
      }
      const net::SignalId sig = signal_of[static_cast<std::size_t>(o.node)];
      CHORTLE_CHECK(sig >= 0);
      circuit.add_output(o.name, sig, o.negated);
    }
    circuit.check();
  }

  net::SignalId emit_single(net::LutCircuit& circuit, net::NodeId v,
                            const Cut& cut,
                            const std::vector<net::SignalId>& signal_of)
      const {
    net::Lut lut;
    lut.name = network_.node(v).name;
    for (int i = 0; i < cut.num_leaves; ++i) {
      const net::SignalId sig = signal_of[static_cast<std::size_t>(
          cut.leaves[static_cast<std::size_t>(i)])];
      CHORTLE_CHECK(sig >= 0);
      lut.inputs.push_back(sig);
    }
    lut.function = cut.func.to_truth();
    return circuit.add_lut(std::move(lut));
  }

  /// Two-LUT chain cascade: the first LUT folds the early literals, the
  /// second combines its (positive) output with the late literals under
  /// the same associative op.
  net::SignalId emit_cascade(net::LutCircuit& circuit, net::NodeId v,
                             const Cut& cut,
                             const std::vector<net::SignalId>& signal_of)
      const {
    CHORTLE_CHECK_MSG(
        chain_function(cut.num_leaves, cut.is_or, cut.neg_mask) == cut.func,
        "decomposed cut is not the literal chain it claims to be");
    net::Lut first;
    int num_early = 0;
    std::uint16_t early_neg = 0;
    for (int i = 0; i < cut.num_leaves; ++i) {
      if (!((cut.early_mask >> i) & 1)) continue;
      const net::SignalId sig = signal_of[static_cast<std::size_t>(
          cut.leaves[static_cast<std::size_t>(i)])];
      CHORTLE_CHECK(sig >= 0);
      first.inputs.push_back(sig);
      if ((cut.neg_mask >> i) & 1)
        early_neg |= static_cast<std::uint16_t>(1 << num_early);
      ++num_early;
    }
    first.function =
        chain_function(num_early, cut.is_or, early_neg).to_truth();
    const net::SignalId first_sig = circuit.add_lut(std::move(first));

    net::Lut second;
    second.name = network_.node(v).name;
    second.inputs.push_back(first_sig);
    int num_vars = 1;
    std::uint16_t second_neg = 0;  // the cascade signal enters positive
    for (int i = 0; i < cut.num_leaves; ++i) {
      if ((cut.early_mask >> i) & 1) continue;
      const net::SignalId sig = signal_of[static_cast<std::size_t>(
          cut.leaves[static_cast<std::size_t>(i)])];
      CHORTLE_CHECK(sig >= 0);
      second.inputs.push_back(sig);
      if ((cut.neg_mask >> i) & 1)
        second_neg |= static_cast<std::uint16_t>(1 << num_vars);
      ++num_vars;
    }
    second.function =
        chain_function(num_vars, cut.is_or, second_neg).to_truth();
    return circuit.add_lut(std::move(second));
  }

  const net::Network& network_;
  const CutMapOptions& options_;
  flowmap::DepthLabels labels_;
  std::vector<NodeState> state_;
  std::vector<int> required_;
  int depth_target_ = 0;
  int repair_cuts_ = 0;
  std::uint64_t cuts_enumerated_ = 0;
};

}  // namespace

void CutMapOptions::validate() const {
  CHORTLE_REQUIRE(k >= 2 && k <= kMaxK, "cutmap K must be in [2, 7]");
  CHORTLE_REQUIRE(cut_limit >= 2 && cut_limit <= 32,
                  "cut_limit must be in [2, 32]");
  CHORTLE_REQUIRE(area_iterations >= 0 && area_iterations <= 8,
                  "area_iterations must be in [0, 8]");
}

CutMapResult map_luts(const net::Network& subject,
                      const CutMapOptions& options) {
  return CutMapper(subject, options).run();
}

}  // namespace chortle::cutmap
