#include "portfolio/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "base/cancel.hpp"
#include "base/check.hpp"
#include "chortle/forest.hpp"
#include "obs/metrics.hpp"
#include "sim/simulate.hpp"

namespace chortle::portfolio {
namespace {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = base::Clock::TimePoint;

/// A verified cover of some subject network, tagged with the strategy
/// that produced it. rank is the strategy's index in the race lineup
/// (fallback 0); the stitched composite uses strategies.size(), the one
/// rank no single strategy holds, so it loses every exact tie.
struct Candidate {
  net::LutCircuit circuit;
  int luts = 0;
  int depth = 0;
  int rank = 0;
};

/// Lower tuple wins. rank's position implements the tie-break policy
/// documented on Objective: equal primary (and, for kDepthThenLuts,
/// secondary) metrics fall back to registration order.
std::tuple<int, int, int> objective_key(Objective objective,
                                        const Candidate& c) {
  switch (objective) {
    case Objective::kLuts:
      return {c.luts, c.rank, c.depth};
    case Objective::kDepth:
      return {c.depth, c.rank, c.luts};
    case Objective::kDepthThenLuts:
      return {c.depth, c.luts, c.rank};
  }
  throw InternalError("objective_key: unknown objective");
}

/// A fanout-free tree lifted out of its parent network as a standalone
/// network: leaves become inputs "l0", "l1", ... (leaves[i] records the
/// parent node input i stands for) and the root drives output "root".
struct TreeSubnet {
  net::Network network;
  std::vector<net::NodeId> leaves;
};

TreeSubnet extract_tree(const net::Network& parent, const core::Tree& tree) {
  TreeSubnet out;
  std::unordered_map<net::NodeId, net::NodeId> local;  // parent -> subnet
  for (const net::NodeId gate : tree.gates) local.emplace(gate, -1);
  std::unordered_map<net::NodeId, net::NodeId> leaf_of;
  for (const net::NodeId gate : tree.gates) {
    const net::Network::Node& node = parent.node(gate);
    std::vector<net::Fanin> fanins;
    fanins.reserve(node.fanins.size());
    for (const net::Fanin& fanin : node.fanins) {
      const auto in_tree = local.find(fanin.node);
      net::NodeId src;
      if (in_tree != local.end() && in_tree->second != -1) {
        src = in_tree->second;
      } else {
        const auto leaf = leaf_of.find(fanin.node);
        if (leaf != leaf_of.end()) {
          src = leaf->second;
        } else {
          src = out.network.add_input(
              "l" + std::to_string(out.leaves.size()));
          leaf_of.emplace(fanin.node, src);
          out.leaves.push_back(fanin.node);
        }
      }
      fanins.push_back(net::Fanin{src, fanin.negated});
    }
    local[gate] = out.network.add_gate(node.op, std::move(fanins));
  }
  out.network.add_output("root", local.at(tree.root), /*negated=*/false);
  return out;
}

/// Verifies a mapping result against the network it covers and wraps it
/// as a Candidate; nullopt when the cover fails structural or
/// simulation checks. Racer results pass through here so an unsound
/// strategy can lose the race but never corrupt the output.
std::optional<Candidate> make_candidate(const net::Network& subject,
                                        net::LutCircuit circuit, int rank) {
  try {
    circuit.check();
    if (!sim::equivalent(sim::design_of(subject), sim::design_of(circuit)))
      return std::nullopt;
  } catch (...) {
    return std::nullopt;
  }
  Candidate candidate{std::move(circuit), 0, 0, rank};
  candidate.luts = candidate.circuit.num_luts();
  candidate.depth = candidate.circuit.depth();
  return candidate;
}

/// Shared state of one race. Tasks hold the context via shared_ptr, so
/// stragglers that outlive map_with() (the pool keeps running them
/// after the deadline closed the race) still reference valid memory:
/// the context owns copies of the network, the subnets, and the child
/// tokens the tasks map under.
struct RaceContext {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  bool closed = false;

  net::Network network;
  std::vector<TreeSubnet> subnets;
  std::vector<std::unique_ptr<base::CancelToken>> tokens;  // per racer

  // Slots indexed by racer (strategy index) and, for per_tree, by tree.
  std::vector<std::optional<Candidate>> whole;
  std::vector<std::vector<std::optional<Candidate>>> per_tree;
  std::vector<char> racer_cancelled;
};

/// One racer task: map the whole network (tree < 0) or subnet `tree`
/// with strategy `rank` under its child token, verify, and publish into
/// the context unless the race has closed. The candidate slot is only
/// resolved under the lock with `closed` false: once the driver closes
/// the race it moves the slot vectors out of the context, so a
/// straggler that starts (or finishes) late must never index them.
/// The subject networks, by contrast, stay in the context for its whole
/// lifetime, so reading them lock-free here is safe.
void run_race_task(const std::shared_ptr<RaceContext>& ctx,
                   const core::IMapper* strategy, int rank,
                   const core::Options& base_options, int tree) {
  const net::Network& subject =
      tree < 0 ? ctx->network
               : ctx->subnets[static_cast<std::size_t>(tree)].network;
  const base::CancelToken* token = ctx->tokens[static_cast<std::size_t>(rank)]
                                       .get();
  bool cancelled = false;
  std::optional<Candidate> candidate;
  if (token->cancel_requested()) {
    // The race closed before this task ever started; skip the work.
    cancelled = true;
  } else {
    try {
      core::Options options = base_options;
      options.jobs = 1;  // parallelism comes from racing, not per solve
      options.cancel = token;
      core::MapResult result = strategy->map(subject, options);
      bool closed;
      {
        const std::lock_guard<std::mutex> lock(ctx->mu);
        closed = ctx->closed;
      }
      // Verification is the expensive tail; skip it when the result can
      // no longer be used.
      if (!closed)
        candidate =
            make_candidate(subject, std::move(result.circuit), rank);
    } catch (const base::Cancelled&) {
      cancelled = true;
    } catch (...) {
      // A strategy that throws simply contributes nothing.
    }
  }
  {
    const std::lock_guard<std::mutex> lock(ctx->mu);
    if (cancelled) ctx->racer_cancelled[static_cast<std::size_t>(rank)] = 1;
    if (!ctx->closed && candidate.has_value()) {
      std::optional<Candidate>& slot =
          tree < 0 ? ctx->whole[static_cast<std::size_t>(rank)]
                   : ctx->per_tree[static_cast<std::size_t>(rank)]
                                  [static_cast<std::size_t>(tree)];
      slot = std::move(candidate);
    }
    --ctx->pending;
    ctx->cv.notify_all();
  }
}

/// Appends `cover` (a verified cover of the subnet whose leaves map to
/// parent signals via signal_of) to `stitched`, returning the positive
/// stitched signal of the tree root. Cover LUT names are dropped —
/// names must stay unique per circuit and several covers are merged.
net::SignalId splice_tree(net::LutCircuit& stitched,
                          const net::LutCircuit& cover,
                          const std::vector<net::NodeId>& leaves,
                          const std::vector<net::SignalId>& signal_of) {
  // Map cover input signals to stitched signals by name: input "l<i>"
  // stands for parent node leaves[i]. Matching by name (not position)
  // tolerates strategies that reorder inputs.
  std::vector<net::SignalId> remap(
      static_cast<std::size_t>(cover.num_signals()), -1);
  for (int i = 0; i < cover.num_inputs(); ++i) {
    const std::string& name = cover.input_names()[static_cast<std::size_t>(i)];
    CHORTLE_CHECK(name.size() >= 2 && name[0] == 'l');
    const std::size_t leaf = std::stoul(name.substr(1));
    CHORTLE_CHECK(leaf < leaves.size());
    const net::SignalId parent_signal =
        signal_of[static_cast<std::size_t>(leaves[leaf])];
    CHORTLE_CHECK(parent_signal >= 0);
    remap[static_cast<std::size_t>(i)] = parent_signal;
  }

  CHORTLE_CHECK(cover.outputs().size() == 1);
  const net::LutOutput& out = cover.outputs()[0];

  if (out.is_const) {
    // Degenerate cover: the tree collapsed to a constant. Emit a
    // one-input constant LUT so downstream trees still have a signal
    // to read. Any existing signal serves as the ignored input.
    CHORTLE_CHECK(stitched.num_signals() > 0);
    return stitched.add_lut(net::Lut{
        {0},
        out.const_value ? truth::TruthTable::ones(1)
                        : truth::TruthTable::zeros(1),
        ""});
  }

  // The root LUT's table can absorb a free output inversion as long as
  // no other LUT in the cover reads its signal (inverting it would
  // change what they see).
  bool complement_root = false;
  net::SignalId inverter_over = -1;
  if (out.negated) {
    if (cover.is_input_signal(out.signal)) {
      inverter_over = out.signal;  // resolved to a stitched signal below
    } else {
      bool root_is_read = false;
      for (const net::Lut& lut : cover.luts())
        for (const net::SignalId input : lut.inputs)
          if (input == out.signal) root_is_read = true;
      if (root_is_read)
        inverter_over = out.signal;
      else
        complement_root = true;
    }
  }

  for (int i = 0; i < cover.num_luts(); ++i) {
    const net::SignalId cover_signal = cover.num_inputs() + i;
    const net::Lut& lut =
        cover.luts()[static_cast<std::size_t>(i)];
    net::Lut copy;
    copy.inputs.reserve(lut.inputs.size());
    for (const net::SignalId input : lut.inputs) {
      const net::SignalId mapped = remap[static_cast<std::size_t>(input)];
      CHORTLE_CHECK(mapped >= 0);
      copy.inputs.push_back(mapped);
    }
    copy.function = (complement_root && cover_signal == out.signal)
                        ? ~lut.function
                        : lut.function;
    remap[static_cast<std::size_t>(cover_signal)] = stitched.add_lut(
        std::move(copy));
  }

  if (inverter_over >= 0) {
    const net::SignalId over =
        remap[static_cast<std::size_t>(inverter_over)];
    CHORTLE_CHECK(over >= 0);
    return stitched.add_lut(
        net::Lut{{over}, ~truth::TruthTable::var(0, 1), ""});
  }
  return remap[static_cast<std::size_t>(out.signal)];
}

/// Composes per-tree winning covers into one circuit of the parent
/// network. Deterministic given the winner set: primary inputs in
/// network order, trees in forest order, LUTs in cover order.
net::LutCircuit stitch(const net::Network& network,
                       const core::Forest& forest,
                       const std::vector<TreeSubnet>& subnets,
                       const std::vector<const Candidate*>& tree_winners,
                       int k) {
  net::LutCircuit stitched(k);
  std::vector<net::SignalId> signal_of(
      static_cast<std::size_t>(network.num_nodes()), -1);
  for (const net::NodeId input : network.inputs())
    signal_of[static_cast<std::size_t>(input)] =
        stitched.add_input(network.node(input).name);
  for (std::size_t t = 0; t < forest.trees.size(); ++t)
    signal_of[static_cast<std::size_t>(forest.trees[t].root)] = splice_tree(
        stitched, tree_winners[t]->circuit, subnets[t].leaves, signal_of);
  for (const net::Output& output : network.outputs()) {
    if (output.is_const) {
      stitched.add_const_output(output.name, output.const_value);
    } else {
      const net::SignalId signal =
          signal_of[static_cast<std::size_t>(output.node)];
      CHORTLE_CHECK(signal >= 0);
      stitched.add_output(output.name, signal, output.negated);
    }
  }
  return stitched;
}

int default_pool_size() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2, std::min(8, static_cast<int>(hw)));
}

}  // namespace

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kLuts:
      return "luts";
    case Objective::kDepth:
      return "depth";
    case Objective::kDepthThenLuts:
      return "depth-luts";
  }
  throw InternalError("to_string: unknown objective");
}

Objective parse_objective(const std::string& name) {
  if (name == "luts") return Objective::kLuts;
  if (name == "depth") return Objective::kDepth;
  if (name == "depth-luts") return Objective::kDepthThenLuts;
  throw InvalidInput("unknown objective '" + name + "' (expected " +
                     objective_names() + ")");
}

std::string objective_names() { return "luts|depth|depth-luts"; }

std::vector<const core::IMapper*> default_strategies() {
  std::vector<const core::IMapper*> strategies;
  for (const char* name : {"chortle", "flowmap", "cutmap", "libmap"}) {
    const core::IMapper* mapper = core::find_mapper(name);
    CHORTLE_CHECK(mapper != nullptr);
    strategies.push_back(mapper);
  }
  return strategies;
}

PortfolioMapper::PortfolioMapper(PortfolioConfig config)
    : config_(std::move(config)) {}

PortfolioMapper::~PortfolioMapper() = default;

base::ThreadPool& PortfolioMapper::pool() const {
  const std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr)
    pool_ = std::make_unique<base::ThreadPool>(
        config_.jobs > 0 ? config_.jobs : default_pool_size());
  return *pool_;
}

core::MapResult PortfolioMapper::map(const net::Network& network,
                                     const core::Options& options) const {
  return map_with(network, options, config_, nullptr);
}

core::MapResult PortfolioMapper::map_with(const net::Network& network,
                                          const core::Options& options,
                                          const PortfolioConfig& config,
                                          PortfolioStats* stats) const {
  const auto wall_start = SteadyClock::now();
  options.validate();
  const std::vector<const core::IMapper*> strategies =
      config.strategies.empty() ? default_strategies() : config.strategies;
  CHORTLE_REQUIRE(!strategies.empty(),
                  "portfolio: at least one strategy (the fallback) required");

  const base::Clock* seam = config.clock;
  const auto now = [seam] {
    return seam != nullptr ? seam->now() : SteadyClock::now();
  };

  PortfolioStats race;
  race.strategies.resize(strategies.size());
  for (std::size_t r = 0; r < strategies.size(); ++r)
    race.strategies[r].name = strategies[r]->name();

  // Phase 0 — the guaranteed answer. The fallback runs with the
  // caller's options minus cancellation: a portfolio request whose
  // deadline expires mid-race still returns this verified cover.
  const core::IMapper* fallback = strategies[0];
  core::Options fallback_options = options;
  fallback_options.cancel = nullptr;
  core::MapResult fallback_result = fallback->map(network, fallback_options);
  std::optional<Candidate> fallback_whole =
      make_candidate(network, fallback_result.circuit, /*rank=*/0);
  CHORTLE_CHECK_MSG(fallback_whole.has_value(),
                    "portfolio: fallback strategy produced an invalid cover");
  race.strategies[0].completed = true;
  race.strategies[0].luts = fallback_whole->luts;
  race.strategies[0].depth = fallback_whole->depth;

  // Effective deadline: the race budget and the caller's token, earlier
  // of the two when both exist.
  std::optional<TimePoint> deadline;
  if (config.budget_ms >= 0)
    deadline = now() + std::chrono::milliseconds(config.budget_ms);
  const base::CancelToken* parent = options.cancel;
  if (parent != nullptr && parent->has_deadline())
    deadline = deadline.has_value()
                   ? std::min(*deadline, parent->deadline())
                   : parent->deadline();

  const bool race_feasible =
      strategies.size() > 1 && network.num_gates() > 0 &&
      !(deadline.has_value() && now() >= *deadline) &&
      !(parent != nullptr && parent->expired());

  std::vector<std::optional<Candidate>> whole(strategies.size());
  std::vector<std::vector<std::optional<Candidate>>> per_tree(
      strategies.size());
  core::Forest forest;
  std::vector<TreeSubnet> subnets;
  std::vector<std::optional<Candidate>> fallback_trees;
  const auto race_start = SteadyClock::now();

  if (race_feasible) {
    // Phase 0.5 — per-tree fallback candidates, so stitching always has
    // a verified cover for every cone even when racers win only some.
    forest = core::build_forest(network);
    subnets.reserve(forest.trees.size());
    for (const core::Tree& tree : forest.trees)
      subnets.push_back(extract_tree(network, tree));
    fallback_trees.resize(subnets.size());
    core::Options tree_options = fallback_options;
    tree_options.jobs = 1;
    for (std::size_t t = 0; t < subnets.size(); ++t) {
      core::MapResult tree_result =
          fallback->map(subnets[t].network, tree_options);
      fallback_trees[t] = make_candidate(
          subnets[t].network, std::move(tree_result.circuit), /*rank=*/0);
      CHORTLE_CHECK_MSG(fallback_trees[t].has_value(),
                        "portfolio: fallback tree cover failed verification");
    }

    // Phase 1 — the race.
    auto ctx = std::make_shared<RaceContext>();
    ctx->network = network;
    ctx->subnets = subnets;
    ctx->tokens.resize(strategies.size());
    ctx->whole.resize(strategies.size());
    ctx->per_tree.resize(strategies.size());
    ctx->racer_cancelled.assign(strategies.size(), 0);

    base::ThreadPool& workers = pool();
    {
      const std::unique_lock<std::mutex> lock(ctx->mu);
      for (std::size_t r = 1; r < strategies.size(); ++r) {
        const core::IMapper* strategy = strategies[r];
        if (options.k < strategy->min_k() || options.k > strategy->max_k())
          continue;  // this racer cannot play at this K
        ctx->tokens[r] = deadline.has_value()
                             ? std::make_unique<base::CancelToken>(*deadline,
                                                                   seam)
                             : std::make_unique<base::CancelToken>();
        ctx->per_tree[r].resize(subnets.size());
        ctx->pending += 1 + static_cast<int>(subnets.size());
      }
    }
    for (std::size_t r = 1; r < strategies.size(); ++r) {
      if (ctx->tokens[r] == nullptr) continue;
      const core::IMapper* strategy = strategies[r];
      const int rank = static_cast<int>(r);
      workers.submit([ctx, strategy, rank, options] {
        run_race_task(ctx, strategy, rank, options, /*tree=*/-1);
      });
      for (std::size_t t = 0; t < subnets.size(); ++t) {
        workers.submit([ctx, strategy, rank, options, t] {
          run_race_task(ctx, strategy, rank, options, static_cast<int>(t));
        });
      }
    }

    // Phase 2 — wait for completion, deadline, or parent cancellation.
    const base::Clock* wait_clock =
        seam != nullptr ? seam : base::real_clock();
    {
      std::unique_lock<std::mutex> lock(ctx->mu);
      while (ctx->pending > 0) {
        if (parent != nullptr && parent->cancel_requested()) break;
        if (deadline.has_value() && now() >= *deadline) break;
        TimePoint wait_to =
            deadline.has_value() ? *deadline : TimePoint::max();
        if (parent != nullptr && seam == nullptr) {
          // An explicit parent cancel() has no cv to poke us on the
          // real clock; poll at a coarse interval. (With an injected
          // fake clock the test wakes us via wake_all() instead.)
          wait_to =
              std::min(wait_to, now() + std::chrono::milliseconds(50));
        }
        wait_clock->wait_until(ctx->cv, lock, wait_to);
      }
      ctx->closed = true;
      race.cancelled = ctx->pending;
      whole = std::move(ctx->whole);
      per_tree = std::move(ctx->per_tree);
      for (std::size_t r = 0; r < strategies.size(); ++r)
        if (ctx->racer_cancelled[r]) race.strategies[r].cancelled = true;
    }
    for (const auto& token : ctx->tokens)
      if (token != nullptr) token->cancel();
  }
  const double race_seconds =
      std::chrono::duration<double>(SteadyClock::now() - race_start).count();

  // Phase 3 — selection. Per-tree winners first (fallback vs racers per
  // cone), then the global pool: fallback whole, racer wholes, and the
  // stitched composite when some racer won a cone.
  std::vector<const Candidate*> tree_winners(subnets.size(), nullptr);
  int racer_won_trees = 0;
  for (std::size_t t = 0; t < subnets.size(); ++t) {
    const Candidate* best = &*fallback_trees[t];
    for (std::size_t r = 1; r < strategies.size(); ++r) {
      if (per_tree[r].size() != subnets.size()) continue;
      const std::optional<Candidate>& candidate = per_tree[r][t];
      if (candidate.has_value() &&
          objective_key(config.objective, *candidate) <
              objective_key(config.objective, *best))
        best = &*candidate;
    }
    tree_winners[t] = best;
    if (best->rank != 0) {
      ++racer_won_trees;
      ++race.strategies[static_cast<std::size_t>(best->rank)].trees_won;
    }
  }

  std::optional<Candidate> stitched;
  if (racer_won_trees > 0) {
    net::LutCircuit composite =
        stitch(network, forest, subnets, tree_winners, options.k);
    stitched = make_candidate(network, std::move(composite),
                              static_cast<int>(strategies.size()));
    CHORTLE_CHECK_MSG(stitched.has_value(),
                      "portfolio: stitched cover failed verification");
  }

  const Candidate* winner = &*fallback_whole;
  for (std::size_t r = 1; r < strategies.size(); ++r) {
    if (whole[r].has_value()) {
      race.strategies[r].completed = true;
      race.strategies[r].luts = whole[r]->luts;
      race.strategies[r].depth = whole[r]->depth;
      if (objective_key(config.objective, *whole[r]) <
          objective_key(config.objective, *winner))
        winner = &*whole[r];
    }
  }
  if (stitched.has_value() &&
      objective_key(config.objective, *stitched) <
          objective_key(config.objective, *winner))
    winner = &*stitched;

  const bool stitched_won =
      winner->rank == static_cast<int>(strategies.size());
  race.winner = stitched_won
                    ? "stitched"
                    : strategies[static_cast<std::size_t>(winner->rank)]
                          ->name();
  race.stitched_trees = stitched_won ? racer_won_trees : 0;

  // Phase 4 — result assembly and observability. When nothing beat
  // chortle, keep the fallback's full stats (cache behaviour etc.) and
  // its circuit object untouched: the output is then byte-identical to
  // running chortle alone.
  core::MapResult result = std::move(fallback_result);
  if (winner->rank != 0) {
    result.circuit = winner->circuit;
    result.stats = core::MapStats{};
    result.stats.num_luts = winner->luts;
    result.stats.depth = winner->depth;
    result.stats.num_trees = static_cast<int>(subnets.size());
  }
  result.stats.seconds =
      std::chrono::duration<double>(SteadyClock::now() - wall_start).count();
  result.stats.portfolio_winner = race.winner;
  result.stats.portfolio_cancelled = race.cancelled;
  result.stats.portfolio_stitched_trees = race.stitched_trees;

  obs::Registry& registry = obs::Registry::global();
  registry.add(registry.counter("portfolio.won." + race.winner), 1);
  OBS_COUNT("portfolio.cancelled", race.cancelled);
  OBS_COUNT("portfolio.stitched_trees", race.stitched_trees);
  OBS_HDR_OBSERVE("portfolio.race.seconds", race_seconds);

  if (stats != nullptr) *stats = std::move(race);
  return result;
}

const PortfolioMapper& default_portfolio() {
  static const PortfolioMapper mapper;
  return mapper;
}

void ensure_registered() { core::register_mapper(&default_portfolio()); }

}  // namespace chortle::portfolio
