// Deadline-aware portfolio mapping: race every registered strategy on
// one request and return the best verified cover the budget allows.
//
// The race has one asymmetric rule — the fallback strategy (strategies
// front, chortle by default) runs first, synchronously and
// uncancellably, so a valid answer exists before any budget is spent on
// speculation. The remaining strategies then race on a shared thread
// pool, each under its own child CancelToken derived from the common
// deadline; racers that finish in time contribute whole-network
// candidates and per-tree candidates (one per fanout-free tree of the
// input). At the deadline the driver closes the race, cancels the
// children, and selects by the configured objective among:
//
//   - the fallback's whole-network cover (always present),
//   - each racer's whole-network cover (when verified in time),
//   - a stitched cover composing, tree by tree, the best per-tree
//     candidate from any strategy (only built when some racer beat the
//     fallback on at least one tree).
//
// Every candidate is verified (structural check + simulation against
// the network it covers) before it may win; an unverifiable racer
// result is silently dropped, never returned. Ties break toward the
// fallback, so a race that produces nothing strictly better returns a
// circuit byte-identical to plain chortle's.
//
// Determinism: the winner set fixes the output bit-for-bit — stitching
// walks trees in forest order and copies LUTs in cover order, so given
// which strategy won each cone the emitted circuit does not depend on
// race timing. Tests pin the winner set itself with base::FakeClock
// (tests/portfolio_test.cpp): scripted stub strategies finish at exact
// fake times and the driver waits through the same clock, so race
// orderings are reproduced without a single sleep.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/clock.hpp"
#include "base/thread_pool.hpp"
#include "chortle/imapper.hpp"

namespace chortle::portfolio {

/// What "best" means when the race closes. Lower is better on every
/// axis; exact ties always break toward the earlier-registered strategy
/// (the fallback first), keeping the output deterministic.
enum class Objective {
  kLuts,          // fewest LUTs, depth as the final tie-break
  kDepth,         // fewest LUT levels, area as the final tie-break
  kDepthThenLuts  // lexicographic (depth, LUTs)
};

const char* to_string(Objective objective);
/// Parses "luts" | "depth" | "depth-luts"; throws InvalidInput.
Objective parse_objective(const std::string& name);
/// "luts|depth|depth-luts", for CLI help and error text.
std::string objective_names();

struct PortfolioConfig {
  /// Strategies to race; the front entry is the uncancellable fallback
  /// and must always produce a valid cover. Empty selects the default
  /// lineup: chortle (fallback), flowmap, cutmap, libmap.
  std::vector<const core::IMapper*> strategies;

  Objective objective = Objective::kLuts;

  /// Race budget in milliseconds from the start of the call; negative
  /// means no budget (racers run to completion). The effective deadline
  /// is the earlier of this budget and the caller's Options::cancel
  /// deadline, when either exists.
  std::int64_t budget_ms = -1;

  /// Time seam for the deadline and the race wait (base/clock.hpp).
  /// nullptr uses the real steady clock. When a caller passes both a
  /// fake clock here and a deadline-carrying Options::cancel, that
  /// token must read the same clock, or the two deadlines disagree.
  const base::Clock* clock = nullptr;

  /// Racer pool width; 0 sizes from hardware concurrency. The pool is
  /// created lazily on first race and keeps its first size.
  int jobs = 0;
};

/// Per-strategy outcome of one race, in strategies order.
struct StrategyOutcome {
  std::string name;
  bool completed = false;  // whole-network cover verified in time
  bool cancelled = false;  // some task of this strategy was cancelled
  int trees_won = 0;       // trees where this strategy's cover was best
  int luts = -1;           // whole-network cover size (when completed)
  int depth = -1;
};

struct PortfolioStats {
  std::string winner;       // strategy name, or "stitched"
  int cancelled = 0;        // racer tasks still pending when closed
  int stitched_trees = 0;   // trees a non-fallback strategy won, when
                            // the stitched cover is the winner (else 0)
  std::vector<StrategyOutcome> strategies;
};

/// The portfolio racer, itself a core::IMapper ("portfolio") so every
/// tool's --mapper= flag can select it once ensure_registered() ran.
class PortfolioMapper final : public core::IMapper {
 public:
  explicit PortfolioMapper(PortfolioConfig config = {});
  ~PortfolioMapper() override;

  const char* name() const override { return "portfolio"; }
  int min_k() const override { return 2; }
  int max_k() const override { return 6; }

  /// Races with the construction-time config.
  core::MapResult map(const net::Network& network,
                      const core::Options& options) const override;

  /// Races with an explicit config (per-request objective/budget, as
  /// the serve path needs) and optionally reports the detailed race
  /// outcome. MapStats::portfolio_* fields are filled either way.
  core::MapResult map_with(const net::Network& network,
                           const core::Options& options,
                           const PortfolioConfig& config,
                           PortfolioStats* stats) const;

  const PortfolioConfig& config() const { return config_; }

 private:
  base::ThreadPool& pool() const;

  PortfolioConfig config_;
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<base::ThreadPool> pool_;
};

/// The default lineup (chortle fallback + every other built-in that
/// supports the requested K), resolved from the core registry.
std::vector<const core::IMapper*> default_strategies();

/// Process-wide portfolio instance with the default config.
const PortfolioMapper& default_portfolio();

/// Adds default_portfolio() to core's mapper registry (idempotent), so
/// find_mapper("portfolio") and mapper_names() see it. Call at tool
/// startup, before the registry is iterated.
void ensure_registered();

}  // namespace chortle::portfolio
