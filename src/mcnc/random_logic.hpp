// Seeded random multi-level logic, used for the MCNC control-logic
// benchmarks without a public functional specification (apex6/7,
// frg1/2) and for property-based tests. Gates are created in
// topological order with a locality-biased fanin distribution matching
// what optimized MCNC netlists look like: mostly 2-4 input AND/OR
// nodes, occasional wide nodes, random edge polarities.
#pragma once

#include <cstdint>

#include "sop/sop_network.hpp"

namespace chortle::mcnc {

struct RandomLogicParams {
  int num_inputs = 16;
  int num_outputs = 8;
  int num_gates = 100;
  int max_fanin = 5;        // most gates are 2-4 wide; tail up to this
  int wide_node_every = 25; // every Nth gate is wide (up to 3*max_fanin)
  double negate_probability = 0.3;
  std::uint64_t seed = 1;
  // Degenerate-shape hooks (off by default), used by the fuzzer to reach
  // the pipeline's edge cases: constant covers exercise sweep folding and
  // constant primary outputs; buffer (single-literal) covers exercise
  // wire elimination and outputs that collapse onto inputs. Kept after
  // `seed` so existing positional initializers stay valid.
  double constant_node_probability = 0.0;
  double buffer_node_probability = 0.0;
};

/// Builds a random, acyclic, fully deterministic SOP network.
sop::SopNetwork random_logic(const RandomLogicParams& params);

}  // namespace chortle::mcnc
