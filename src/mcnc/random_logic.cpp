#include "mcnc/random_logic.hpp"

#include <algorithm>

#include "base/rng.hpp"

namespace chortle::mcnc {

sop::SopNetwork random_logic(const RandomLogicParams& params) {
  CHORTLE_REQUIRE(params.num_inputs >= 2 && params.num_gates >= 1 &&
                      params.num_outputs >= 1 && params.max_fanin >= 2,
                  "bad random logic parameters");
  CHORTLE_REQUIRE(params.constant_node_probability >= 0.0 &&
                      params.buffer_node_probability >= 0.0 &&
                      params.constant_node_probability +
                              params.buffer_node_probability <=
                          1.0,
                  "degenerate node probabilities must form a distribution");
  Rng rng(params.seed);
  sop::SopNetwork network;
  std::vector<sop::SopNetwork::NodeId> signals;
  for (int i = 0; i < params.num_inputs; ++i)
    signals.push_back(network.add_input("pi" + std::to_string(i)));

  for (int g = 0; g < params.num_gates; ++g) {
    // Degenerate shapes first: constant and buffer nodes short-circuit
    // the usual fanin selection entirely. The roll is only drawn when a
    // hook is enabled so that the default RNG stream (and with it every
    // seeded benchmark substitute) is unchanged.
    if (params.constant_node_probability > 0.0 ||
        params.buffer_node_probability > 0.0) {
      const double degenerate_roll = rng.next_double();
      if (degenerate_roll < params.constant_node_probability) {
        sop::Cover cover =
            rng.next_bool() ? sop::Cover::one() : sop::Cover::zero();
        signals.push_back(
            network.add_node("g" + std::to_string(g), std::move(cover)));
        continue;
      }
      if (degenerate_roll < params.constant_node_probability +
                                params.buffer_node_probability) {
        const auto source = signals[rng.next_below(signals.size())];
        sop::Cover cover;
        cover.add_cube(sop::Cube(std::vector<sop::Literal>{sop::make_literal(
            source, rng.next_bool(params.negate_probability))}));
        signals.push_back(
            network.add_node("g" + std::to_string(g), std::move(cover)));
        continue;
      }
    }

    // Fanin width: mostly 2-4, occasionally wide (exercises the
    // mapper's decomposition search and node splitting).
    int fanin;
    if (params.wide_node_every > 0 && (g + 1) % params.wide_node_every == 0) {
      fanin = static_cast<int>(
          rng.next_in(params.max_fanin, 3 * params.max_fanin));
    } else {
      const double roll = rng.next_double();
      if (roll < 0.40)
        fanin = 2;
      else if (roll < 0.70)
        fanin = 3;
      else if (roll < 0.90)
        fanin = std::min(4, params.max_fanin);
      else
        fanin = static_cast<int>(rng.next_in(2, params.max_fanin));
    }
    fanin = std::min<int>(fanin, static_cast<int>(signals.size()));

    // Locality-biased distinct sources.
    std::vector<sop::SopNetwork::NodeId> sources;
    while (static_cast<int>(sources.size()) < fanin) {
      std::size_t index;
      if (rng.next_bool(0.5) && signals.size() > 30) {
        index = signals.size() - 1 - rng.next_below(30);
      } else {
        index = rng.next_below(signals.size());
      }
      const auto id = signals[index];
      if (std::find(sources.begin(), sources.end(), id) == sources.end())
        sources.push_back(id);
    }

    std::vector<sop::Literal> literals;
    for (auto id : sources)
      literals.push_back(
          sop::make_literal(id, rng.next_bool(params.negate_probability)));

    sop::Cover cover;
    const double shape = rng.next_double();
    if (shape < 0.40) {
      cover.add_cube(sop::Cube(literals));  // AND
    } else if (shape < 0.80) {
      for (sop::Literal lit : literals)
        cover.add_cube(sop::Cube(std::vector<sop::Literal>{lit}));  // OR
    } else {
      // Two-cube SOP over a random split of the fanins.
      const std::size_t split = 1 + rng.next_below(literals.size() - 1);
      cover.add_cube(sop::Cube(std::vector<sop::Literal>(
          literals.begin(), literals.begin() + static_cast<long>(split))));
      cover.add_cube(sop::Cube(std::vector<sop::Literal>(
          literals.begin() + static_cast<long>(split), literals.end())));
    }
    signals.push_back(
        network.add_node("g" + std::to_string(g), std::move(cover)));
  }

  // Outputs drawn (distinct) from the last portion of the gate list so
  // most of the network stays live.
  const std::size_t pool_begin =
      signals.size() - std::min<std::size_t>(
                           signals.size(),
                           std::max<std::size_t>(
                               static_cast<std::size_t>(params.num_outputs),
                               static_cast<std::size_t>(params.num_gates) /
                                   2));
  std::vector<sop::SopNetwork::NodeId> pool(signals.begin() +
                                                static_cast<long>(pool_begin),
                                            signals.end());
  rng.shuffle(pool);
  const int num_outputs =
      std::min<int>(params.num_outputs, static_cast<int>(pool.size()));
  for (int i = 0; i < num_outputs; ++i) network.mark_output(pool[
      static_cast<std::size_t>(i)]);
  network.check();
  return network;
}

}  // namespace chortle::mcnc
