// Deterministic substitutes for the twelve MCNC-89 benchmarks of the
// paper's Tables 1-4. The original BLIF files are not shipped offline;
// each generator builds a circuit with the same role and comparable
// structure (see DESIGN.md §4 for the substitution rationale):
//
//   9symml  exact: symmetric function, 1 iff 3 <= popcount(x) <= 6
//   alu2    3-bit ALU (add/sub/and/or/xor, ripple carry, flags)
//   alu4    5-bit ALU, same family
//   apex6   seeded random multi-level control logic (large interface)
//   apex7   seeded random multi-level control logic (medium)
//   count   16-bit incrementer with enable and carry chain
//   des     one DES-like round: expansion, key XOR, 8 seeded 6->4
//           S-boxes (the real tables are substituted by seeded random
//           ones), P-wiring, left-half XOR
//   frg1    seeded random control logic, few outputs, deep
//   frg2    seeded random control logic (large)
//   k2      PLA-style two-level circuit: wide shared random cubes
//   pair    two 16-bit adders + comparator + select layer
//   rot     32-bit barrel rotator (5 mux stages)
//
// All generators are seeded internally and fully reproducible.
#pragma once

#include <string>
#include <vector>

#include "sop/sop_network.hpp"

namespace chortle::mcnc {

/// Benchmark names in the order of the paper's tables.
const std::vector<std::string>& benchmark_names();

/// Builds the named benchmark substitute. Throws InvalidInput for an
/// unknown name.
sop::SopNetwork generate(const std::string& name);

// Individual generators (also used directly by tests and examples).
sop::SopNetwork make_9symml();
sop::SopNetwork make_alu(int bits, const std::string& prefix);  // alu2/alu4
sop::SopNetwork make_count(int bits);
sop::SopNetwork make_rot(int bits, int stages);
sop::SopNetwork make_pair(int bits);
sop::SopNetwork make_des_round();
sop::SopNetwork make_k2(int inputs, int outputs, int cubes,
                        std::uint64_t seed);

/// Collapses a multi-level network (<= 16 inputs) into a two-level PLA:
/// one irredundant SOP node per output, exactly the form of the MCNC
/// espresso benchmarks (alu2/alu4/9sym are PLAs, not netlists); the
/// optimizer then rebuilds multi-level structure the way MIS II did.
sop::SopNetwork flatten_to_pla(const sop::SopNetwork& network);

}  // namespace chortle::mcnc
