#include <bit>
#include "mcnc/generators.hpp"

#include <algorithm>
#include <numeric>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "mcnc/random_logic.hpp"
#include "sop/isop.hpp"

namespace chortle::mcnc {
namespace {

using sop::Cover;
using sop::Cube;
using sop::Literal;
using sop::SopNetwork;
using NodeId = SopNetwork::NodeId;

Literal pos(NodeId id) { return sop::make_literal(id, false); }
Literal neg(NodeId id) { return sop::make_literal(id, true); }

/// Single-cube node (AND of literals).
NodeId n_and(SopNetwork& net, const std::string& name,
             std::vector<Literal> literals) {
  Cover cover;
  cover.add_cube(Cube(std::move(literals)));
  return net.add_node(name, std::move(cover));
}

/// One-literal-per-cube node (OR of literals).
NodeId n_or(SopNetwork& net, const std::string& name,
            const std::vector<Literal>& literals) {
  Cover cover;
  for (Literal lit : literals)
    cover.add_cube(Cube(std::vector<Literal>{lit}));
  return net.add_node(name, std::move(cover));
}

/// Two-input XOR node: a b' + a' b.
NodeId n_xor(SopNetwork& net, const std::string& name, NodeId a, NodeId b) {
  Cover cover;
  cover.add_cube(Cube({pos(a), neg(b)}));
  cover.add_cube(Cube({neg(a), pos(b)}));
  return net.add_node(name, std::move(cover));
}

/// 2:1 mux: sel' a + sel b.
NodeId n_mux(SopNetwork& net, const std::string& name, NodeId sel, NodeId a,
             NodeId b) {
  Cover cover;
  cover.add_cube(Cube({neg(sel), pos(a)}));
  cover.add_cube(Cube({pos(sel), pos(b)}));
  return net.add_node(name, std::move(cover));
}

/// Majority (carry function): ab + ac + bc.
NodeId n_maj(SopNetwork& net, const std::string& name, NodeId a, NodeId b,
             NodeId c) {
  Cover cover;
  cover.add_cube(Cube({pos(a), pos(b)}));
  cover.add_cube(Cube({pos(a), pos(c)}));
  cover.add_cube(Cube({pos(b), pos(c)}));
  return net.add_node(name, std::move(cover));
}

/// Converts a local-variable cover (vars = indices into `map`) to one
/// over network node ids.
Cover remap_cover(const Cover& local, const std::vector<NodeId>& map) {
  Cover result;
  for (const Cube& cube : local.cubes()) {
    std::vector<Literal> lits;
    for (Literal lit : cube.literals())
      lits.push_back(sop::make_literal(
          map[static_cast<std::size_t>(sop::literal_var(lit))],
          sop::literal_negated(lit)));
    result.add_cube(Cube(std::move(lits)));
  }
  return result;
}

}  // namespace

sop::SopNetwork make_9symml() {
  SopNetwork net;
  std::vector<NodeId> inputs;
  for (int i = 0; i < 9; ++i)
    inputs.push_back(net.add_input("x" + std::to_string(i)));
  truth::TruthTable fn(9);
  for (std::uint64_t m = 0; m < fn.num_minterms(); ++m) {
    const int weight = std::popcount(m);
    if (weight >= 3 && weight <= 6) fn.set_bit(m, true);
  }
  const NodeId out =
      net.add_node("out", remap_cover(sop::isop(fn), inputs));
  net.mark_output(out);
  net.check();
  return net;
}

sop::SopNetwork make_alu(int bits, const std::string& prefix) {
  CHORTLE_REQUIRE(bits >= 1 && bits <= 16, "ALU width out of range");
  SopNetwork net;
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i)
    a.push_back(net.add_input(prefix + "a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i)
    b.push_back(net.add_input(prefix + "b" + std::to_string(i)));
  const NodeId cin = net.add_input(prefix + "cin");
  const NodeId s0 = net.add_input(prefix + "s0");  // subtract (invert b)
  const NodeId s1 = net.add_input(prefix + "s1");  // logic op select
  const NodeId m = net.add_input(prefix + "m");    // arithmetic/logic mode

  std::vector<NodeId> out(static_cast<std::size_t>(bits));
  NodeId carry = cin;
  NodeId prev_carry = cin;
  for (int i = 0; i < bits; ++i) {
    const std::string si = std::to_string(i);
    const NodeId bi = n_xor(net, "bx" + si, b[static_cast<std::size_t>(i)],
                            s0);
    const NodeId ai = a[static_cast<std::size_t>(i)];
    const NodeId axb = n_xor(net, "axb" + si, ai, bi);
    const NodeId sum = n_xor(net, "sum" + si, axb, carry);
    const NodeId next_carry = n_maj(net, "c" + std::to_string(i + 1), ai, bi,
                                    carry);
    // Logic unit: s1 ? (a | b) : (a & b).
    const NodeId land = n_and(net, "and" + si, {pos(ai),
                              pos(b[static_cast<std::size_t>(i)])});
    const NodeId lor = n_or(net, "or" + si, {pos(ai),
                            pos(b[static_cast<std::size_t>(i)])});
    const NodeId logic = n_mux(net, "log" + si, s1, land, lor);
    out[static_cast<std::size_t>(i)] = n_mux(net, "out" + si, m, sum, logic);
    prev_carry = carry;
    carry = next_carry;
  }
  for (int i = 0; i < bits; ++i)
    net.mark_output(out[static_cast<std::size_t>(i)]);
  net.mark_output(carry);
  const NodeId overflow = n_xor(net, "ovf", carry, prev_carry);
  net.mark_output(overflow);
  // Zero flag: AND of complemented outputs.
  std::vector<Literal> zero_lits;
  for (NodeId o : out) zero_lits.push_back(neg(o));
  net.mark_output(n_and(net, "zero", std::move(zero_lits)));
  net.check();
  return net;
}

sop::SopNetwork make_count(int bits) {
  CHORTLE_REQUIRE(bits >= 2 && bits <= 32, "counter width out of range");
  SopNetwork net;
  std::vector<NodeId> x;
  for (int i = 0; i < bits; ++i)
    x.push_back(net.add_input("x" + std::to_string(i)));
  const NodeId en = net.add_input("en");
  NodeId carry = en;
  for (int i = 0; i < bits; ++i) {
    const std::string si = std::to_string(i);
    net.mark_output(n_xor(net, "q" + si, x[static_cast<std::size_t>(i)],
                          carry));
    carry = n_and(net, "c" + std::to_string(i + 1),
                  {pos(x[static_cast<std::size_t>(i)]), pos(carry)});
  }
  net.mark_output(carry);
  net.check();
  return net;
}

sop::SopNetwork make_rot(int bits, int stages) {
  CHORTLE_REQUIRE(bits >= 2 && stages >= 1 && (1 << stages) <= 2 * bits,
                  "rotator parameters out of range");
  SopNetwork net;
  std::vector<NodeId> data;
  for (int i = 0; i < bits; ++i)
    data.push_back(net.add_input("d" + std::to_string(i)));
  std::vector<NodeId> amount;
  for (int j = 0; j < stages; ++j)
    amount.push_back(net.add_input("s" + std::to_string(j)));
  std::vector<NodeId> current = data;
  for (int j = 0; j < stages; ++j) {
    const int shift = 1 << j;
    std::vector<NodeId> next(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) {
      next[static_cast<std::size_t>(i)] = n_mux(
          net, "m" + std::to_string(j) + "_" + std::to_string(i),
          amount[static_cast<std::size_t>(j)],
          current[static_cast<std::size_t>(i)],
          current[static_cast<std::size_t>((i + shift) % bits)]);
    }
    current = std::move(next);
  }
  for (int i = 0; i < bits; ++i)
    net.mark_output(current[static_cast<std::size_t>(i)]);
  net.check();
  return net;
}

sop::SopNetwork make_pair(int bits) {
  CHORTLE_REQUIRE(bits >= 2 && bits <= 32, "pair width out of range");
  SopNetwork net;
  auto add_bus = [&](const std::string& name) {
    std::vector<NodeId> bus;
    for (int i = 0; i < bits; ++i)
      bus.push_back(net.add_input(name + std::to_string(i)));
    return bus;
  };
  const std::vector<NodeId> a = add_bus("a");
  const std::vector<NodeId> b = add_bus("b");
  const std::vector<NodeId> c = add_bus("c");
  const std::vector<NodeId> d = add_bus("d");
  const NodeId sel = net.add_input("sel");

  auto ripple_adder = [&](const std::vector<NodeId>& x,
                          const std::vector<NodeId>& y,
                          const std::string& prefix) {
    std::vector<NodeId> sum(static_cast<std::size_t>(bits));
    NodeId carry = SopNetwork::kInvalidNode;
    for (int i = 0; i < bits; ++i) {
      const std::string si = std::to_string(i);
      const NodeId axb = n_xor(net, prefix + "x" + si,
                               x[static_cast<std::size_t>(i)],
                               y[static_cast<std::size_t>(i)]);
      if (i == 0) {
        sum[0] = axb;
        carry = n_and(net, prefix + "c1",
                      {pos(x[0]), pos(y[0])});
        continue;
      }
      sum[static_cast<std::size_t>(i)] =
          n_xor(net, prefix + "s" + si, axb, carry);
      carry = n_maj(net, prefix + "c" + std::to_string(i + 1),
                    x[static_cast<std::size_t>(i)],
                    y[static_cast<std::size_t>(i)], carry);
    }
    return std::make_pair(sum, carry);
  };
  const auto [sum1, carry1] = ripple_adder(a, b, "p");
  const auto [sum2, carry2] = ripple_adder(c, d, "q");

  // Selected result bus.
  for (int i = 0; i < bits; ++i)
    net.mark_output(n_mux(net, "r" + std::to_string(i), sel,
                          sum1[static_cast<std::size_t>(i)],
                          sum2[static_cast<std::size_t>(i)]));
  for (int i = 0; i < bits; ++i) {
    net.mark_output(sum1[static_cast<std::size_t>(i)]);
    net.mark_output(sum2[static_cast<std::size_t>(i)]);
  }
  net.mark_output(carry1);
  net.mark_output(carry2);
  // Equality of the two sums.
  std::vector<Literal> eq_lits;
  for (int i = 0; i < bits; ++i)
    eq_lits.push_back(
        neg(n_xor(net, "ne" + std::to_string(i),
                  sum1[static_cast<std::size_t>(i)],
                  sum2[static_cast<std::size_t>(i)])));
  net.mark_output(n_and(net, "eq", std::move(eq_lits)));
  net.check();
  return net;
}

sop::SopNetwork make_des_round() {
  SopNetwork net;
  std::vector<NodeId> left, right, key;
  for (int i = 0; i < 32; ++i)
    left.push_back(net.add_input("l" + std::to_string(i)));
  for (int i = 0; i < 32; ++i)
    right.push_back(net.add_input("r" + std::to_string(i)));
  for (int i = 0; i < 48; ++i)
    key.push_back(net.add_input("k" + std::to_string(i)));

  // Expansion E: group g reads right[(4g-1 .. 4g+4) mod 32] (the real
  // DES expansion wiring), XORed with the round key.
  std::vector<NodeId> xored(48);
  for (int g = 0; g < 8; ++g)
    for (int j = 0; j < 6; ++j) {
      const int bit = ((4 * g - 1 + j) % 32 + 32) % 32;
      const int idx = 6 * g + j;
      xored[static_cast<std::size_t>(idx)] =
          n_xor(net, "e" + std::to_string(idx),
                right[static_cast<std::size_t>(bit)],
                key[static_cast<std::size_t>(idx)]);
    }

  // S-boxes: the published tables are substituted by seeded random
  // 6->4 functions (dense random logic with the same shape).
  std::vector<NodeId> sbox_out;
  for (int g = 0; g < 8; ++g) {
    std::vector<NodeId> ins(xored.begin() + 6 * g, xored.begin() + 6 * g + 6);
    for (int o = 0; o < 4; ++o) {
      Rng rng(0xDE5'00000ull + static_cast<std::uint64_t>(16 * g + o));
      truth::TruthTable fn = truth::TruthTable::from_bits(rng.next_u64(), 6);
      sbox_out.push_back(net.add_node(
          "s" + std::to_string(g) + "_" + std::to_string(o),
          remap_cover(sop::isop(fn), ins)));
    }
  }

  // P permutation (seeded) then XOR with the left half.
  std::vector<int> perm(32);
  std::iota(perm.begin(), perm.end(), 0);
  Rng perm_rng(0xDE5'BEEFull);
  perm_rng.shuffle(perm);
  for (int i = 0; i < 32; ++i) {
    const NodeId f = sbox_out[static_cast<std::size_t>(perm[
        static_cast<std::size_t>(i)])];
    net.mark_output(n_xor(net, "nr" + std::to_string(i),
                          left[static_cast<std::size_t>(i)], f));
  }
  // New left half is the old right half.
  for (int i = 0; i < 32; ++i) net.mark_output(right[
      static_cast<std::size_t>(i)]);
  net.check();
  return net;
}

sop::SopNetwork make_k2(int inputs, int outputs, int cubes,
                        std::uint64_t seed) {
  CHORTLE_REQUIRE(inputs >= 8 && outputs >= 1 && cubes >= 4,
                  "k2 parameters out of range");
  Rng rng(seed);
  SopNetwork net;
  std::vector<NodeId> pis;
  for (int i = 0; i < inputs; ++i)
    pis.push_back(net.add_input("x" + std::to_string(i)));

  // Shared product-term pool, PLA style.
  std::vector<Cube> pool;
  for (int c = 0; c < cubes; ++c) {
    const int width = static_cast<int>(rng.next_in(5, 9));
    std::vector<Literal> lits;
    std::vector<int> chosen;
    while (static_cast<int>(chosen.size()) < width) {
      const int v = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(inputs)));
      if (std::find(chosen.begin(), chosen.end(), v) == chosen.end()) {
        chosen.push_back(v);
        lits.push_back(sop::make_literal(pis[static_cast<std::size_t>(v)],
                                         rng.next_bool(0.5)));
      }
    }
    pool.push_back(Cube(std::move(lits)));
  }
  for (int o = 0; o < outputs; ++o) {
    Cover cover;
    const int terms = static_cast<int>(rng.next_in(8, 16));
    for (int tumbler = 0; tumbler < terms; ++tumbler)
      cover.add_cube(pool[rng.next_below(pool.size())]);
    net.mark_output(
        net.add_node("o" + std::to_string(o), cover.scc_minimized()));
  }
  net.check();
  return net;
}

sop::SopNetwork flatten_to_pla(const sop::SopNetwork& network) {
  const int n = static_cast<int>(network.inputs().size());
  CHORTLE_REQUIRE(n <= truth::TruthTable::kMaxVars,
                  "too many inputs to flatten");
  // Global function of every node over the primary inputs.
  std::vector<truth::TruthTable> value(
      static_cast<std::size_t>(network.num_nodes()), truth::TruthTable(n));
  for (int i = 0; i < n; ++i)
    value[static_cast<std::size_t>(network.inputs()[
        static_cast<std::size_t>(i)])] = truth::TruthTable::var(i, n);
  for (NodeId id : network.topological_order()) {
    truth::TruthTable acc(n);
    for (const Cube& cube : network.node(id).cover.cubes()) {
      truth::TruthTable term = truth::TruthTable::ones(n);
      for (Literal lit : cube.literals()) {
        const truth::TruthTable& v =
            value[static_cast<std::size_t>(sop::literal_var(lit))];
        term &= sop::literal_negated(lit) ? ~v : v;
      }
      acc |= term;
    }
    value[static_cast<std::size_t>(id)] = std::move(acc);
  }

  SopNetwork pla;
  std::vector<NodeId> pis;
  for (NodeId id : network.inputs())
    pis.push_back(pla.add_input(network.node(id).name));
  for (NodeId id : network.outputs()) {
    const std::string name = network.node(id).name +
                             (network.is_input(id) ? "_out" : "");
    pla.mark_output(pla.add_node(
        name, remap_cover(sop::isop(value[static_cast<std::size_t>(id)]),
                          pis)));
  }
  pla.check();
  return pla;
}

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = {
      "9symml", "alu2", "alu4", "apex6", "apex7", "count",
      "des",    "frg1", "frg2", "k2",    "pair",  "rot"};
  return names;
}

sop::SopNetwork generate(const std::string& name) {
  if (name == "9symml") return make_9symml();
  // The real alu2/alu4 are two-level espresso PLAs; flatten the
  // structural ALUs into the same form before optimization.
  if (name == "alu2") return flatten_to_pla(make_alu(3, ""));
  if (name == "alu4") return flatten_to_pla(make_alu(5, ""));
  if (name == "count") return make_count(16);
  if (name == "rot") return make_rot(32, 5);
  if (name == "pair") return make_pair(16);
  if (name == "des") return make_des_round();
  if (name == "k2") return make_k2(45, 45, 90, 0xC2);
  if (name == "apex6")
    return random_logic({135, 99, 700, 5, 25, 0.3, 0xA6});
  if (name == "apex7")
    return random_logic({49, 37, 250, 5, 25, 0.3, 0xA7});
  if (name == "frg1")
    return random_logic({28, 3, 140, 5, 20, 0.3, 0xF1});
  if (name == "frg2")
    return random_logic({143, 139, 800, 5, 25, 0.3, 0xF2});
  CHORTLE_REQUIRE(false, "unknown benchmark: " + name);
  return {};  // unreachable
}

}  // namespace chortle::mcnc
