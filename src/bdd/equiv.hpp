// Formal equivalence checking between any two design representations
// in the pipeline, by building BDDs for every output over a shared
// variable order and comparing canonical references. Complements
// sim::equivalent: simulation samples, this proves — or returns a
// concrete counterexample, or reports "inconclusive" when the node
// budget is exhausted (BDDs can blow up; multipliers famously do).
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/lut_circuit.hpp"
#include "network/network.hpp"
#include "sop/sop_network.hpp"

namespace chortle::bdd {

struct FormalOutcome {
  enum class Status { kEquivalent, kDifferent, kInconclusive };
  Status status = Status::kInconclusive;
  // For kDifferent: which output and a distinguishing assignment
  // (aligned with the first design's input order).
  std::string output_name;
  std::vector<bool> witness;
  // For kInconclusive: what stopped the check.
  std::string note;

  explicit operator bool() const { return status == Status::kEquivalent; }
};

namespace detail {
struct Io {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};
Io io_of(const net::Network& design);
Io io_of(const net::LutCircuit& design);
Io io_of(const sop::SopNetwork& design);

/// Builds per-output BDDs; `var_of` maps input name -> BDD variable.
std::vector<Ref> build_outputs(
    Manager& manager, const net::Network& design,
    const std::vector<int>& input_vars);
std::vector<Ref> build_outputs(
    Manager& manager, const net::LutCircuit& design,
    const std::vector<int>& input_vars);
std::vector<Ref> build_outputs(
    Manager& manager, const sop::SopNetwork& design,
    const std::vector<int>& input_vars);

FormalOutcome check_impl(
    const Io& io_a, const Io& io_b,
    const std::function<std::vector<Ref>(Manager&, const std::vector<int>&)>&
        build_a,
    const std::function<std::vector<Ref>(Manager&, const std::vector<int>&)>&
        build_b,
    std::size_t max_nodes, const std::vector<std::string>& variable_order);
}  // namespace detail

/// Checks two designs for equivalence (interfaces aligned by name, as
/// in sim::find_mismatch). The variable order defaults to the first
/// design's input order; BDD sizes are famously order-sensitive
/// (selector-above-data for mux structures), so callers may supply a
/// permutation of the input names as `variable_order` — index 0 is the
/// topmost variable. The witness of a kDifferent outcome is aligned
/// with the first design's input order regardless.
template <typename DesignA, typename DesignB>
FormalOutcome check_equivalence(const DesignA& a, const DesignB& b,
                                std::size_t max_nodes = 2'000'000,
                                const std::vector<std::string>&
                                    variable_order = {}) {
  return detail::check_impl(
      detail::io_of(a), detail::io_of(b),
      [&](Manager& m, const std::vector<int>& vars) {
        return detail::build_outputs(m, a, vars);
      },
      [&](Manager& m, const std::vector<int>& vars) {
        return detail::build_outputs(m, b, vars);
      },
      max_nodes, variable_order);
}

}  // namespace chortle::bdd
