#include "bdd/equiv.hpp"

#include <algorithm>
#include <unordered_map>

namespace chortle::bdd {
namespace detail {

Io io_of(const net::Network& design) {
  Io io;
  for (net::NodeId id : design.inputs())
    io.inputs.push_back(design.node(id).name);
  for (const net::Output& o : design.outputs()) io.outputs.push_back(o.name);
  return io;
}

Io io_of(const net::LutCircuit& design) {
  Io io;
  io.inputs = design.input_names();
  for (const net::LutOutput& o : design.outputs())
    io.outputs.push_back(o.name);
  return io;
}

Io io_of(const sop::SopNetwork& design) {
  Io io;
  for (sop::SopNetwork::NodeId id : design.inputs())
    io.inputs.push_back(design.node(id).name);
  for (sop::SopNetwork::NodeId id : design.outputs())
    io.outputs.push_back(design.node(id).name);
  return io;
}

std::vector<Ref> build_outputs(Manager& manager, const net::Network& design,
                               const std::vector<int>& input_vars) {
  std::vector<Ref> value(static_cast<std::size_t>(design.num_nodes()),
                         manager.zero());
  for (std::size_t i = 0; i < design.inputs().size(); ++i)
    value[static_cast<std::size_t>(design.inputs()[i])] =
        manager.var(input_vars[i]);
  for (net::NodeId id : design.gates_in_topo_order()) {
    const auto& node = design.node(id);
    const bool is_and = node.op == net::GateOp::kAnd;
    Ref acc = is_and ? manager.one() : manager.zero();
    for (const net::Fanin& f : node.fanins) {
      Ref operand = value[static_cast<std::size_t>(f.node)];
      if (f.negated) operand = !operand;
      acc = is_and ? manager.apply_and(acc, operand)
                   : manager.apply_or(acc, operand);
    }
    value[static_cast<std::size_t>(id)] = acc;
  }
  std::vector<Ref> outputs;
  for (const net::Output& o : design.outputs()) {
    if (o.is_const) {
      outputs.push_back(o.const_value ? manager.one() : manager.zero());
      continue;
    }
    Ref r = value[static_cast<std::size_t>(o.node)];
    outputs.push_back(o.negated ? !r : r);
  }
  return outputs;
}

std::vector<Ref> build_outputs(Manager& manager,
                               const net::LutCircuit& design,
                               const std::vector<int>& input_vars) {
  std::vector<Ref> value(static_cast<std::size_t>(design.num_signals()),
                         manager.zero());
  for (int i = 0; i < design.num_inputs(); ++i)
    value[static_cast<std::size_t>(i)] =
        manager.var(input_vars[static_cast<std::size_t>(i)]);
  for (int i = 0; i < design.num_luts(); ++i) {
    const net::Lut& lut = design.luts()[static_cast<std::size_t>(i)];
    Ref acc = manager.zero();
    for (std::uint64_t m = 0; m < lut.function.num_minterms(); ++m) {
      if (!lut.function.bit(m)) continue;
      Ref term = manager.one();
      for (std::size_t j = 0; j < lut.inputs.size(); ++j) {
        Ref in = value[static_cast<std::size_t>(lut.inputs[j])];
        if (!((m >> j) & 1)) in = !in;
        term = manager.apply_and(term, in);
      }
      acc = manager.apply_or(acc, term);
    }
    value[static_cast<std::size_t>(design.num_inputs() + i)] = acc;
  }
  std::vector<Ref> outputs;
  for (const net::LutOutput& o : design.outputs()) {
    if (o.is_const) {
      outputs.push_back(o.const_value ? manager.one() : manager.zero());
      continue;
    }
    Ref r = value[static_cast<std::size_t>(o.signal)];
    outputs.push_back(o.negated ? !r : r);
  }
  return outputs;
}

std::vector<Ref> build_outputs(Manager& manager,
                               const sop::SopNetwork& design,
                               const std::vector<int>& input_vars) {
  std::vector<Ref> value(static_cast<std::size_t>(design.num_nodes()),
                         manager.zero());
  for (std::size_t i = 0; i < design.inputs().size(); ++i)
    value[static_cast<std::size_t>(design.inputs()[i])] =
        manager.var(input_vars[i]);
  for (sop::SopNetwork::NodeId id : design.topological_order()) {
    Ref acc = manager.zero();
    for (const sop::Cube& cube : design.node(id).cover.cubes()) {
      Ref term = manager.one();
      for (sop::Literal lit : cube.literals()) {
        Ref operand =
            value[static_cast<std::size_t>(sop::literal_var(lit))];
        if (sop::literal_negated(lit)) operand = !operand;
        term = manager.apply_and(term, operand);
      }
      acc = manager.apply_or(acc, term);
    }
    value[static_cast<std::size_t>(id)] = acc;
  }
  std::vector<Ref> outputs;
  for (sop::SopNetwork::NodeId id : design.outputs())
    outputs.push_back(value[static_cast<std::size_t>(id)]);
  return outputs;
}

FormalOutcome check_impl(
    const Io& io_a, const Io& io_b,
    const std::function<std::vector<Ref>(Manager&, const std::vector<int>&)>&
        build_a,
    const std::function<std::vector<Ref>(Manager&, const std::vector<int>&)>&
        build_b,
    std::size_t max_nodes, const std::vector<std::string>& variable_order) {
  FormalOutcome outcome;
  CHORTLE_REQUIRE(io_a.inputs.size() == io_b.inputs.size() &&
                      io_a.outputs.size() == io_b.outputs.size(),
                  "interface size mismatch between designs");
  // Variable order: caller-supplied, else design a's input order;
  // b aligned by name.
  std::unordered_map<std::string, int> var_of;
  if (!variable_order.empty()) {
    CHORTLE_REQUIRE(variable_order.size() == io_a.inputs.size(),
                    "variable order size mismatch");
    for (std::size_t i = 0; i < variable_order.size(); ++i)
      CHORTLE_REQUIRE(
          var_of.emplace(variable_order[i], static_cast<int>(i)).second,
          "duplicate name in variable order");
  }
  std::vector<int> vars_a(io_a.inputs.size());
  for (std::size_t i = 0; i < io_a.inputs.size(); ++i) {
    if (variable_order.empty()) {
      var_of.emplace(io_a.inputs[i], static_cast<int>(i));
      vars_a[i] = static_cast<int>(i);
    } else {
      auto it = var_of.find(io_a.inputs[i]);
      CHORTLE_REQUIRE(it != var_of.end(),
                      "input '" + io_a.inputs[i] +
                          "' missing from variable order");
      vars_a[i] = it->second;
    }
  }
  std::vector<int> vars_b(io_b.inputs.size());
  for (std::size_t i = 0; i < io_b.inputs.size(); ++i) {
    auto it = var_of.find(io_b.inputs[i]);
    CHORTLE_REQUIRE(it != var_of.end(),
                    "input '" + io_b.inputs[i] + "' missing from design a");
    vars_b[i] = it->second;
  }
  std::unordered_map<std::string, std::size_t> output_index_b;
  for (std::size_t i = 0; i < io_b.outputs.size(); ++i)
    output_index_b.emplace(io_b.outputs[i], i);

  try {
    Manager manager(static_cast<int>(io_a.inputs.size()), max_nodes);
    const std::vector<Ref> outputs_a = build_a(manager, vars_a);
    const std::vector<Ref> outputs_b = build_b(manager, vars_b);
    for (std::size_t i = 0; i < io_a.outputs.size(); ++i) {
      auto it = output_index_b.find(io_a.outputs[i]);
      CHORTLE_REQUIRE(it != output_index_b.end(),
                      "output '" + io_a.outputs[i] +
                          "' missing from design b");
      if (outputs_a[i] == outputs_b[it->second]) continue;  // canonical
      const Ref difference =
          manager.apply_xor(outputs_a[i], outputs_b[it->second]);
      CHORTLE_CHECK(!(difference == manager.zero()));
      outcome.status = FormalOutcome::Status::kDifferent;
      outcome.output_name = io_a.outputs[i];
      // Witness re-expressed in design a's input order.
      const std::vector<bool> by_variable = *manager.find_minterm(difference);
      outcome.witness.resize(io_a.inputs.size());
      for (std::size_t j = 0; j < vars_a.size(); ++j)
        outcome.witness[j] =
            by_variable[static_cast<std::size_t>(vars_a[j])];
      return outcome;
    }
    outcome.status = FormalOutcome::Status::kEquivalent;
    return outcome;
  } catch (const NodeBudgetExceeded&) {
    outcome.status = FormalOutcome::Status::kInconclusive;
    outcome.note = "BDD node budget exceeded";
    return outcome;
  }
}

}  // namespace detail
}  // namespace chortle::bdd
