#include "bdd/bdd.hpp"

namespace chortle::bdd {
namespace {

std::uint64_t pack_children(Ref low, Ref high) {
  return (static_cast<std::uint64_t>(low.raw()) << 32) | high.raw();
}

std::uint64_t pack_triple_hash(Ref f, Ref g, Ref h) {
  std::uint64_t x = f.raw();
  x = x * 0x9E3779B97F4A7C15ull + g.raw();
  x = x * 0x9E3779B97F4A7C15ull + h.raw();
  return x;
}

}  // namespace

Manager::Manager(int num_vars, std::size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(max_nodes) {
  CHORTLE_REQUIRE(num_vars >= 0, "variable count");
  // Node 0: the constant-1 terminal, at the level below all variables.
  nodes_.push_back(Node{num_vars_, Ref{}, Ref{}});
  unique_by_var_.resize(static_cast<std::size_t>(num_vars_));
}

Ref Manager::var(int index) {
  CHORTLE_REQUIRE(index >= 0 && index < num_vars_, "variable index");
  return make_node(index, zero(), one());
}

Ref Manager::make_node(int var, Ref low, Ref high) {
  if (low == high) return low;
  // Canonical form: the high (then) edge is never complemented.
  if (high.complemented())
    return !make_node(var, !low, !high);
  auto& table = unique_by_var_[static_cast<std::size_t>(var)];
  const std::uint64_t key = pack_children(low, high);
  if (auto it = table.find(key); it != table.end())
    return Ref::make(it->second, false);
  if (nodes_.size() >= max_nodes_) throw NodeBudgetExceeded();
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  table.emplace(key, index);
  return Ref::make(index, false);
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal rules.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;
  if (g == zero() && h == one()) return !f;
  // Normalize: the predicate is never complemented.
  if (f.complemented()) {
    f = !f;
    std::swap(g, h);
  }
  const std::uint64_t key = pack_triple_hash(f, g, h);
  if (auto it = computed_.find(key); it != computed_.end()) {
    const auto& entry = it->second;
    if (entry.f == f && entry.g == g && entry.h == h) return entry.result;
  }

  const auto level = [&](Ref r) {
    return nodes_[static_cast<std::size_t>(r.node())].var;
  };
  const int top = std::min({level(f), level(g), level(h)});
  const auto cofactor = [&](Ref r, bool phase) {
    const Node& node = nodes_[static_cast<std::size_t>(r.node())];
    if (node.var != top) return r;
    Ref child = phase ? node.high : node.low;
    if (r.complemented()) child = !child;
    return child;
  };
  const Ref then_part =
      ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const Ref else_part =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const Ref result = make_node(top, else_part, then_part);
  computed_[key] = ComputedEntry{f, g, h, result};
  return result;
}

Ref Manager::apply_and(Ref a, Ref b) { return ite(a, b, zero()); }
Ref Manager::apply_or(Ref a, Ref b) { return ite(a, one(), b); }
Ref Manager::apply_xor(Ref a, Ref b) { return ite(a, !b, b); }

bool Manager::evaluate(Ref r, const std::vector<bool>& assignment) const {
  CHORTLE_REQUIRE(static_cast<int>(assignment.size()) == num_vars_,
                  "assignment arity");
  bool complemented = r.complemented();
  std::uint32_t node = r.node();
  while (node != 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    const Ref child = assignment[static_cast<std::size_t>(n.var)] ? n.high
                                                                  : n.low;
    complemented = complemented != child.complemented();
    node = child.node();
  }
  return !complemented;
}

std::uint64_t Manager::count_minterms(Ref r) {
  CHORTLE_REQUIRE(num_vars_ <= 62, "minterm count limited to 62 variables");
  // sub(r): satisfying assignments over variables [level(r), num_vars).
  const std::function<std::uint64_t(Ref)> sub = [&](Ref ref)
      -> std::uint64_t {
    const Node& node = nodes_[static_cast<std::size_t>(ref.node())];
    if (ref.node() == 0) return ref.complemented() ? 0 : 1;
    if (auto it = count_cache_.find(ref.raw()); it != count_cache_.end())
      return it->second;
    const auto half = [&](Ref child) {
      const Ref edge = ref.complemented() ? !child : child;
      const int child_level =
          nodes_[static_cast<std::size_t>(edge.node())].var;
      return sub(edge) << (child_level - node.var - 1);
    };
    const std::uint64_t total = half(node.low) + half(node.high);
    count_cache_.emplace(ref.raw(), total);
    return total;
  };
  const int top_level = nodes_[static_cast<std::size_t>(r.node())].var;
  return sub(r) << top_level;
}

std::optional<std::vector<bool>> Manager::find_minterm(Ref r) const {
  if (r == zero()) return std::nullopt;
  std::vector<bool> assignment(static_cast<std::size_t>(num_vars_), false);
  bool complemented = r.complemented();
  std::uint32_t node = r.node();
  while (node != 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    // Prefer the low branch if it is not the constant 0 (a canonical
    // non-zero edge always has a satisfying assignment below it).
    Ref low = n.low;
    if (complemented) low = !low;
    Ref next;
    if (!(low.node() == 0 && low.complemented())) {
      next = low;
    } else {
      Ref high = n.high;
      if (complemented) high = !high;
      assignment[static_cast<std::size_t>(n.var)] = true;
      next = high;
    }
    complemented = next.complemented();
    node = next.node();
  }
  CHORTLE_CHECK(!complemented);  // reached the constant 1
  return assignment;
}

}  // namespace chortle::bdd
