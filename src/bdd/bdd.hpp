// A compact reduced-ordered BDD package with complement edges on a
// unique table, plus an ITE-based apply. Used as the formal complement
// to random/bit-parallel simulation: sim::equivalent samples, while
// BDD-based checking proves equivalence (up to a node budget).
// Variable order is the caller's: variable 0 is the topmost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "base/check.hpp"

namespace chortle::bdd {

/// A BDD edge: node index with a complement bit in the LSB.
/// Node 0 is the constant-1 terminal; its complemented edge is 0.
class Ref {
 public:
  Ref() = default;

  bool operator==(const Ref&) const = default;
  std::uint32_t raw() const { return bits_; }

  static Ref make(std::uint32_t node, bool complemented) {
    Ref r;
    r.bits_ = (node << 1) | (complemented ? 1u : 0u);
    return r;
  }
  std::uint32_t node() const { return bits_ >> 1; }
  bool complemented() const { return (bits_ & 1u) != 0; }
  Ref operator!() const { return make(node(), !complemented()); }

 private:
  std::uint32_t bits_ = 0;
};

/// Thrown when a manager exceeds its node budget (callers treat the
/// check as inconclusive rather than waiting out a blow-up).
class NodeBudgetExceeded : public std::runtime_error {
 public:
  NodeBudgetExceeded() : std::runtime_error("BDD node budget exceeded") {}
};

class Manager {
 public:
  explicit Manager(int num_vars, std::size_t max_nodes = 2'000'000);

  int num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  Ref one() const { return Ref::make(0, false); }
  Ref zero() const { return Ref::make(0, true); }
  Ref var(int index);

  Ref apply_and(Ref a, Ref b);
  Ref apply_or(Ref a, Ref b);
  Ref apply_xor(Ref a, Ref b);
  Ref apply_not(Ref a) const { return !a; }
  /// if-then-else, the universal connective.
  Ref ite(Ref f, Ref g, Ref h);

  bool is_const(Ref r) const { return r.node() == 0; }
  /// Evaluate under a full assignment (assignment[i] = variable i).
  bool evaluate(Ref r, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over all variables (<= 62 vars).
  std::uint64_t count_minterms(Ref r);

  /// Some satisfying assignment; nullopt iff r is the constant 0.
  std::optional<std::vector<bool>> find_minterm(Ref r) const;

 private:
  struct Node {
    int var;   // level; the terminal sits at num_vars_
    Ref low;   // cofactor var=0
    Ref high;  // cofactor var=1 (never complemented: canonical form)
  };
  struct ComputedEntry {
    Ref f, g, h, result;
  };

  Ref make_node(int var, Ref low, Ref high);

  int num_vars_;
  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  // Unique tables, one per variable: (low, high) -> node index.
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>>
      unique_by_var_;
  // Computed table for ite, hash-addressed with stored operands.
  std::unordered_map<std::uint64_t, ComputedEntry> computed_;
  std::unordered_map<std::uint32_t, std::uint64_t> count_cache_;
};

}  // namespace chortle::bdd
