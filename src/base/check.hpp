// Lightweight runtime checks for internal invariants and user-facing
// argument validation. Checks throw rather than abort so that library
// users (and tests) can recover; they are always on, including in
// release builds, because mapping correctness matters more than the
// last few percent of speed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace chortle {

/// Thrown when an internal invariant is violated (a bug in this library).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller passes invalid arguments or malformed input data.
class InvalidInput : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'C')  // CHECK -> internal invariant
    throw InternalError(os.str());
  throw InvalidInput(os.str());
}

}  // namespace detail
}  // namespace chortle

/// Internal invariant: failure indicates a bug in the library.
#define CHORTLE_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::chortle::detail::check_failed("CHECK", #cond, __FILE__, __LINE__,    \
                                      "");                                   \
  } while (0)

#define CHORTLE_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond))                                                             \
      ::chortle::detail::check_failed("CHECK", #cond, __FILE__, __LINE__,    \
                                      (msg));                                \
  } while (0)

/// Argument/input validation: failure indicates bad caller input.
#define CHORTLE_REQUIRE(cond, msg)                                           \
  do {                                                                       \
    if (!(cond))                                                             \
      ::chortle::detail::check_failed("REQUIRE", #cond, __FILE__, __LINE__,  \
                                      (msg));                                \
  } while (0)
