#include "base/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace chortle {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// CHORTLE_LOG_LEVEL: a level name (case-insensitive) or digit 0-4.
/// Unrecognized values are ignored so a typo cannot silence errors.
bool parse_level(const char* text, LogLevel* out) {
  if (text == nullptr || *text == '\0') return false;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p)
    lower += static_cast<char>(
        *p >= 'A' && *p <= 'Z' ? *p - 'A' + 'a' : *p);
  if (lower == "debug" || lower == "0") *out = LogLevel::kDebug;
  else if (lower == "info" || lower == "1") *out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning" || lower == "2")
    *out = LogLevel::kWarn;
  else if (lower == "error" || lower == "3") *out = LogLevel::kError;
  else if (lower == "off" || lower == "none" || lower == "4")
    *out = LogLevel::kOff;
  else return false;
  return true;
}

void apply_env_override_once() {
  static const bool applied = [] {
    LogLevel level;
    if (parse_level(std::getenv("CHORTLE_LOG_LEVEL"), &level))
      g_level.store(level, std::memory_order_relaxed);
    return true;
  }();
  (void)applied;
}

std::chrono::steady_clock::time_point log_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::mutex& log_mutex() {
  static std::mutex* const mu = new std::mutex;  // immortal
  return *mu;
}

}  // namespace

LogLevel log_level() {
  apply_env_override_once();
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) {
  apply_env_override_once();  // explicit calls win over the environment
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  // One formatted write per line under a lock: concurrent threads
  // cannot interleave characters, and lines stay in timestamp order.
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[%12.6f %-5s] %s\n", seconds, level_name(level),
               message.c_str());
  std::fflush(stderr);
}

}  // namespace detail
}  // namespace chortle
