// FNV-1a 64-bit hashing for stable cross-run fingerprints (golden BLIF
// hashes in tests/golden/ and BENCH_*.json). Not for hash tables —
// std::hash and TruthTable::hash stay as they are; this one is pinned
// to a published algorithm so committed digests never move with the
// standard library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace chortle::base {

constexpr std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

inline std::string fnv1a64_hex(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t hash = fnv1a64(bytes);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace chortle::base
