// A small work-stealing thread pool for the mapping pipeline's
// embarrassingly parallel phases (one DP per fanout-free tree).
//
// Design: every worker owns a deque of tasks guarded by its own mutex.
// submit() distributes tasks round-robin across the deques; a worker
// pops from the front of its own deque and, when that runs dry, steals
// from the back of a sibling's. Mutex-per-deque (rather than a lock-free
// Chase-Lev deque) keeps the implementation small and ThreadSanitizer-
// obviously correct; the tasks dispatched here (whole-tree dynamic
// programs) are long compared to a lock acquisition, so queue overhead
// is noise.
//
// Determinism contract: the pool never promises a completion order.
// Callers that need deterministic output must split work into a
// parallel compute phase (order-independent) and a sequential commit
// phase, as map_network does (DESIGN.md "Concurrency model").
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <vector>

namespace chortle::base {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  /// Enqueues one task. Tasks may submit further tasks. A task must not
  /// throw — wrap the body and capture the exception (parallel_for does
  /// this for its callers).
  void submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is available.
  /// Lets a thread blocked on a completion latch help instead of idling
  /// (essential when the pool is saturated or has one worker).
  bool try_run_one();

 private:
  struct Impl;
  Impl* impl_;
};

/// Resolves a requested job count to the worker count actually used:
/// a positive request wins; 0 means "auto" — the CHORTLE_JOBS
/// environment variable when it parses as a positive integer, else 1.
/// The result is clamped to [1, 512].
int resolve_jobs(int requested);

/// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
/// The calling thread helps execute tasks while it waits. With a null
/// pool (or n <= 1) the indices run sequentially on the caller — the
/// exception behaviour is identical either way: every index runs, and
/// the lowest-index exception is rethrown after the last one finishes.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace chortle::base
