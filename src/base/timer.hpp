// Wall-clock timer used to report mapper runtimes (the paper's "t (sec.)"
// columns). Steady clock so results are monotone under NTP adjustments.
#pragma once

#include <chrono>
#include <functional>
#include <utility>

namespace chortle {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Measures one scope and delivers the elapsed seconds to a sink at
/// scope exit. The sink keeps this header dependency-free: callers
/// accumulate into a double, or use obs::phase_sink to report into a
/// run report and the metrics registry.
class ScopedTimer {
 public:
  using Sink = std::function<void(double seconds)>;

  explicit ScopedTimer(Sink sink) : sink_(std::move(sink)) {}
  /// Adds the elapsed seconds into *accumulator at scope exit.
  explicit ScopedTimer(double* accumulator)
      : sink_([accumulator](double s) { *accumulator += s; }) {}
  ~ScopedTimer() {
    if (sink_) sink_(timer_.seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (the sink still fires at scope exit).
  double seconds() const { return timer_.seconds(); }

 private:
  WallTimer timer_;
  Sink sink_;
};

}  // namespace chortle
