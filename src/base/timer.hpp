// Wall-clock timer used to report mapper runtimes (the paper's "t (sec.)"
// columns). Steady clock so results are monotone under NTP adjustments.
#pragma once

#include <chrono>

namespace chortle {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace chortle
