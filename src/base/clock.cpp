#include "base/clock.hpp"

#include <algorithm>
#include <thread>

#include "base/check.hpp"

namespace chortle::base {
namespace {

class RealClock final : public Clock {
 public:
  TimePoint now() const override {
    return std::chrono::steady_clock::now();
  }

  void wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lock,
                  TimePoint deadline) const override {
    if (deadline == TimePoint::max())
      cv.wait(lock);
    else
      cv.wait_until(lock, deadline);
  }
};

}  // namespace

const Clock* real_clock() {
  static const RealClock clock;
  return &clock;
}

Clock::TimePoint FakeClock::now() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void FakeClock::wait_until(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lock,
                           TimePoint deadline) const {
  CHORTLE_CHECK(lock.owns_lock());
  {
    const std::lock_guard<std::mutex> guard(mu_);
    if (now_ >= deadline) return;  // already timed out in fake time
    waiters_.push_back(Waiter{&cv, lock.mutex()});
  }
  // One wait, not a loop: the contract is the same as a raw condition
  // variable (the caller re-checks its predicate), and a single wait
  // lets wake_all() force that re-check without moving time.
  cv.wait(lock);
  {
    const std::lock_guard<std::mutex> guard(mu_);
    const auto it = std::find_if(
        waiters_.begin(), waiters_.end(), [&](const Waiter& w) {
          return w.cv == &cv && w.mutex == lock.mutex();
        });
    if (it != waiters_.end()) waiters_.erase(it);
  }
}

void FakeClock::advance(Duration d) {
  CHORTLE_REQUIRE(d >= Duration::zero(),
                  "FakeClock::advance: time cannot move backwards");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    now_ += d;
  }
  wake_all();
}

void FakeClock::set(TimePoint t) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    CHORTLE_REQUIRE(t >= now_,
                    "FakeClock::set: time cannot move backwards");
    now_ = t;
  }
  wake_all();
}

void FakeClock::wake_all() const {
  // Two constraints shape this loop. Lifetime: a waiter's cv and mutex
  // may live on its stack and die the moment wait_until returns, so
  // they may only be touched while the waiter is still registered —
  // i.e. under mu_, which every deregistration also takes. Lost
  // wakeups: a thread between "registered" and "blocked in cv.wait"
  // still holds its own mutex, so notifying under that mutex cannot
  // land in the gap. Taking the waiter's mutex while holding mu_ would
  // invert wait_until's caller-mutex -> mu_ order, hence try_lock: a
  // failed attempt means the waiter is mid-register or mid-deregister,
  // and releasing mu_ lets it finish before the retry.
  while (true) {
    bool retry = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (const Waiter& waiter : waiters_) {
        std::unique_lock<std::mutex> guard(*waiter.mutex,
                                           std::try_to_lock);
        if (!guard.owns_lock()) {
          retry = true;
          continue;
        }
        waiter.cv->notify_all();
      }
    }
    if (!retry) return;
    std::this_thread::yield();
  }
}

}  // namespace chortle::base
