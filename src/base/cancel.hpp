// Cooperative cancellation for long-running mapping work. A CancelToken
// combines an explicit cancel flag with an optional wall-clock deadline;
// code deep inside the mapper (the tree DP loops, the parallel solve
// phase) polls check() at coarse intervals and unwinds with Cancelled
// when the token has fired. Polling sites are chosen so that the clock
// read amortizes to noise against the work between polls (DESIGN.md
// "Service architecture", cancellation points).
//
// Thread-safety: cancel() may race freely with any number of concurrent
// expired()/check() readers — the flag is a relaxed atomic and the
// deadline is immutable after construction. A token must outlive every
// mapping call it is passed to; the mapper never retains the pointer
// beyond the call (TreeMapper clears it from its stored Options).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace chortle::base {

/// Thrown by CancelToken::check() when the token has fired. Deliberately
/// not derived from InternalError/InvalidInput: cancellation is neither
/// a bug nor bad input, and callers (the serve request loop) catch it
/// separately to report a deadline error.
class Cancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that only fires on an explicit cancel().
  CancelToken() = default;
  /// A token that additionally fires once `deadline` has passed.
  explicit CancelToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  /// Token firing `budget` from now (non-positive: already expired).
  static CancelToken after(Clock::duration budget) {
    return CancelToken(Clock::now() + budget);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once cancelled or past the deadline. Reads the clock, so hot
  /// loops should call this every N iterations, not every one.
  bool expired() const {
    if (cancel_requested()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Throws Cancelled (mentioning `where`) once the token has fired.
  void check(const char* where) const {
    if (expired())
      throw Cancelled(std::string("cancelled: ") + where +
                      (cancel_requested() ? " (cancel requested)"
                                          : " (deadline exceeded)"));
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace chortle::base
