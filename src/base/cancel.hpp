// Cooperative cancellation for long-running mapping work. A CancelToken
// combines an explicit cancel flag with an optional wall-clock deadline;
// code deep inside the mapper (the tree DP loops, the parallel solve
// phase) polls check() at coarse intervals and unwinds with Cancelled
// when the token has fired. Polling sites are chosen so that the clock
// read amortizes to noise against the work between polls (DESIGN.md
// "Service architecture", cancellation points).
//
// Thread-safety: cancel() may race freely with any number of concurrent
// expired()/check() readers — the flag is a relaxed atomic and the
// deadline is immutable after construction. A token must outlive every
// mapping call it is passed to; the mapper never retains the pointer
// beyond the call (TreeMapper clears it from its stored Options).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "base/clock.hpp"

namespace chortle::base {

/// Thrown by CancelToken::check() when the token has fired. Deliberately
/// not derived from InternalError/InvalidInput: cancellation is neither
/// a bug nor bad input, and callers (the serve request loop) catch it
/// separately to report a deadline error.
class Cancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that only fires on an explicit cancel().
  CancelToken() = default;
  /// A token that additionally fires once `deadline` has passed. The
  /// deadline is read through `clock` when one is given (the test seam
  /// of base/clock.hpp, which must then outlive the token); nullptr
  /// keeps the direct steady_clock fast path.
  explicit CancelToken(Clock::time_point deadline,
                       const chortle::base::Clock* clock = nullptr)
      : has_deadline_(true), deadline_(deadline), clock_(clock) {}

  /// Token firing `budget` from now (non-positive: already expired).
  static CancelToken after(Clock::duration budget,
                           const chortle::base::Clock* clock = nullptr) {
    return CancelToken((clock != nullptr ? clock->now() : Clock::now()) +
                           budget,
                       clock);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once cancelled or past the deadline. Reads the clock, so hot
  /// loops should call this every N iterations, not every one.
  bool expired() const {
    if (cancel_requested()) return true;
    if (!has_deadline_) return false;
    const Clock::time_point now =
        clock_ != nullptr ? clock_->now() : Clock::now();
    return now >= deadline_;
  }

  /// Throws Cancelled (mentioning `where`) once the token has fired.
  void check(const char* where) const {
    if (expired())
      throw Cancelled(std::string("cancelled: ") + where +
                      (cancel_requested() ? " (cancel requested)"
                                          : " (deadline exceeded)"));
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  /// The injected time source, or nullptr for the real steady clock.
  const chortle::base::Clock* clock() const { return clock_; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const chortle::base::Clock* clock_ = nullptr;
};

}  // namespace chortle::base
