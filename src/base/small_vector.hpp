// A vector with inline storage for the first N elements, for hot paths
// whose element counts are almost always tiny (LUT cone inputs are
// bounded by K <= 6, emission walk stacks by tree depth). Restricted to
// trivially copyable element types so growth and destruction stay
// memcpy-simple — that covers every current user and keeps this ~100
// lines instead of a general-purpose container.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

#include "base/check.hpp"

namespace chortle::base {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVector() = default;
  ~SmallVector() { release(); }

  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  bool spilled() const { return data_ != inline_data(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) {
    CHORTLE_CHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    CHORTLE_CHECK(i < size_);
    return data_[i];
  }

  T& back() {
    CHORTLE_CHECK(size_ > 0);
    return data_[size_ - 1];
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow();
    // memcpy rather than assignment: the slot holds raw storage, not a
    // constructed T (fine for the trivially copyable types allowed here).
    std::memcpy(static_cast<void*>(data_ + size_),
                static_cast<const void*>(&value), sizeof(T));
    ++size_;
  }

  void pop_back() {
    CHORTLE_CHECK(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

 private:
  T* inline_data() { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void grow() {
    const std::size_t new_capacity = capacity_ * 2;
    T* heap = static_cast<T*>(
        ::operator new(new_capacity * sizeof(T), std::align_val_t{alignof(T)}));
    std::memcpy(static_cast<void*>(heap), static_cast<const void*>(data_),
                size_ * sizeof(T));
    release();
    data_ = heap;
    capacity_ = new_capacity;
  }

  void release() {
    if (spilled())
      ::operator delete(data_, std::align_val_t{alignof(T)});
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace chortle::base
