// Deterministic pseudo-random number generator (xoshiro256**).
// All benchmark-circuit generators and property tests are seeded through
// this class so every run of the suite is exactly reproducible.
#pragma once

#include <cstdint>

#include "base/check.hpp"

namespace chortle {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors, so that
    // nearby seeds yield unrelated streams.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    CHORTLE_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    CHORTLE_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace chortle
