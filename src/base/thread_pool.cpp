#include "base/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "base/check.hpp"
#include "base/logging.hpp"

namespace chortle::base {

struct ThreadPool::Impl {
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<Queue>> queues;
  std::vector<std::thread> workers;

  std::mutex sleep_mu;
  std::condition_variable work_cv;
  // Tasks currently sitting in some deque. Incremented before the push
  // and decremented after the pop, so it never underflows and is > 0
  // whenever a task is queued — a sleeping worker can therefore never
  // miss one (the wait predicate reads it under sleep_mu, and submit
  // touches sleep_mu before notifying).
  std::atomic<std::size_t> available{0};
  std::atomic<bool> stop{false};
  // Round-robin cursors for task placement and external stealing.
  std::atomic<std::size_t> next_queue{0};
  std::atomic<std::size_t> next_steal{0};

  /// Pops a task: front of the home deque first (LIFO warmth does not
  /// matter here; FIFO keeps largest-first dispatch meaningful), then
  /// the back of each sibling's in turn.
  std::function<void()> take(std::size_t home) {
    const std::size_t n = queues.size();
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues[(home + i) % n];
      const std::lock_guard<std::mutex> lock(q.mu);
      if (q.tasks.empty()) continue;
      std::function<void()> task;
      if (i == 0) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
      } else {
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
      }
      available.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
    return nullptr;
  }

  void worker_loop(std::size_t idx) {
    while (true) {
      if (std::function<void()> task = take(idx)) {
        task();
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mu);
      work_cv.wait(lock, [this] {
        return stop.load(std::memory_order_relaxed) ||
               available.load(std::memory_order_relaxed) > 0;
      });
      // On stop, keep draining until the deques are empty.
      if (stop.load(std::memory_order_relaxed) &&
          available.load(std::memory_order_relaxed) == 0)
        return;
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_(new Impl) {
  const int n = std::max(num_threads, 1);
  impl_->queues.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    impl_->queues.push_back(std::make_unique<Impl::Queue>());
  impl_->workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    impl_->workers.emplace_back(
        [this, i] { impl_->worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->sleep_mu);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

int ThreadPool::size() const { return static_cast<int>(impl_->workers.size()); }

void ThreadPool::submit(std::function<void()> task) {
  CHORTLE_CHECK(task != nullptr);
  const std::size_t home =
      impl_->next_queue.fetch_add(1, std::memory_order_relaxed) %
      impl_->queues.size();
  impl_->available.fetch_add(1, std::memory_order_relaxed);
  {
    Impl::Queue& q = *impl_->queues[home];
    const std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  {
    // Empty critical section: orders the push before the notify so a
    // worker between its predicate check and wait cannot miss it.
    const std::lock_guard<std::mutex> lock(impl_->sleep_mu);
  }
  impl_->work_cv.notify_one();
}

bool ThreadPool::try_run_one() {
  const std::size_t home =
      impl_->next_steal.fetch_add(1, std::memory_order_relaxed) %
      impl_->queues.size();
  if (std::function<void()> task = impl_->take(home)) {
    task();
    return true;
  }
  return false;
}

int resolve_jobs(int requested) {
  int jobs = requested;
  if (jobs <= 0) {
    jobs = 1;
    if (const char* env = std::getenv("CHORTLE_JOBS")) {
      errno = 0;
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end == env || *end != '\0' || errno == ERANGE || parsed <= 0) {
        // Silent fallback here cost real debugging time: a typo like
        // "4x" ran everything single-threaded with no hint why.
        LOG_WARN << "CHORTLE_JOBS=\"" << env
                 << "\" is not a positive integer; ignoring it and "
                    "using 1 job";
      } else if (parsed > 512) {
        LOG_WARN << "CHORTLE_JOBS=\"" << env << "\" clamped to 512";
        jobs = 512;
      } else {
        jobs = static_cast<int>(parsed);
      }
    }
  }
  return std::clamp(jobs, 1, 512);
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    std::exception_ptr first;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (first == nullptr) first = std::current_exception();
      }
    }
    if (first != nullptr) std::rethrow_exception(first);
    return;
  }

  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  };
  Latch latch{{}, {}, n};
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool->submit([&latch, &errors, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_all();
    });
  }
  // Help run queued tasks until the deques look empty, then sleep until
  // the last in-flight task completes. Workers drain anything queued
  // after the caller goes to sleep, so this cannot deadlock.
  while (pool->try_run_one()) {
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
  lock.unlock();

  // Every index ran; surface the lowest-index failure (the same one the
  // sequential path would have chosen), so behaviour is jobs-invariant.
  for (std::exception_ptr& error : errors)
    if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace chortle::base
