// Minimal leveled logging to stderr. Quiet by default so that bench
// harness stdout stays machine-parsable; raise the level for debugging.
//
// Thread-safe: each line is emitted with a single locked write, prefixed
// with a monotonic seconds-since-start timestamp and the level tag. The
// CHORTLE_LOG_LEVEL environment variable (debug|info|warn|error|off or
// 0-4) overrides the default threshold at startup, so bench and fuzz
// runs can raise verbosity without recompiling; set_log_level() still
// wins over the environment.
#pragma once

#include <sstream>
#include <string>

namespace chortle {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace chortle

#define CHORTLE_LOG(level)                                 \
  if (static_cast<int>(level) <                            \
      static_cast<int>(::chortle::log_level())) {          \
  } else                                                   \
    ::chortle::detail::LogLine(level)

#define LOG_DEBUG CHORTLE_LOG(::chortle::LogLevel::kDebug)
#define LOG_INFO CHORTLE_LOG(::chortle::LogLevel::kInfo)
#define LOG_WARN CHORTLE_LOG(::chortle::LogLevel::kWarn)
#define LOG_ERROR CHORTLE_LOG(::chortle::LogLevel::kError)
