// The time seam for everything that races a deadline: a virtual clock
// supplying now() and a timed condition-variable wait. Production code
// uses RealClock (std::chrono::steady_clock underneath); tests inject a
// FakeClock and script time explicitly — "cutmap finishes at t=3ms, the
// deadline fires at t=5ms" becomes two advance() calls instead of a
// sleep and a prayer. base::CancelToken reads its deadline through this
// seam and the portfolio race driver waits through it, so every
// race-ordering test in tests/portfolio_test.cpp runs with zero sleeps.
//
// Waiting protocol (both implementations): the caller holds `lock` (on
// its own mutex), calls wait_until(cv, lock, deadline), and re-checks
// its predicate when the call returns — the wait can end on a notify,
// on the deadline, or spuriously, exactly like a raw condition
// variable. Pass TimePoint::max() for a pure notification wait.
//
// FakeClock wakeup guarantee: advance()/wake_all() notify each waiter
// under both the registry lock and the waiter's own mutex. The former
// means a waiter's cv/mutex (often stack-locals of wait_until's caller)
// are only touched while the waiter is provably still registered; the
// latter means a thread between "registered as waiter" and "blocked in
// cv.wait" — it still holds its mutex across that gap — cannot miss
// the notification. A fake-clock advance is therefore never lost and
// never touches a dead condition variable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace chortle::base {

class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  virtual TimePoint now() const = 0;

  /// Blocks on `cv` (the caller holds `lock`) until notified, the
  /// clock reaches `deadline`, or spuriously. The caller re-checks its
  /// predicate; TimePoint::max() waits for a notification only.
  virtual void wait_until(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lock,
                          TimePoint deadline) const = 0;
};

/// The process-wide real clock (steady_clock).
const Clock* real_clock();

/// A manually-advanced clock for deterministic race tests. now() only
/// moves when a test calls advance()/set(); waiters blocked through
/// wait_until() are woken by any advance (and by wake_all(), which
/// moves no time — used to make waiters re-check non-time predicates
/// such as an explicit cancellation).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint now() const override;
  void wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lock,
                  TimePoint deadline) const override;

  /// Moves time forward and wakes every waiter. `d` must be >= 0.
  void advance(Duration d);
  /// Jumps to an absolute time (never backwards) and wakes waiters.
  void set(TimePoint t);
  /// Wakes every waiter without moving time.
  void wake_all() const;

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mutex;
  };

  mutable std::mutex mu_;
  TimePoint now_;
  mutable std::vector<Waiter> waiters_;
};

}  // namespace chortle::base
