#include "arch/clb.hpp"

#include <algorithm>
#include <set>

#include "base/check.hpp"

namespace chortle::arch {
namespace {

/// External input pins a set of LUTs needs: the union of their input
/// signals. Signals driven by a member LUT still occupy a pin (the
/// XC3000 CLB has no internal function-to-function path), so no
/// subtraction happens here.
std::vector<net::SignalId> pin_union(const net::LutCircuit& circuit,
                                     const std::vector<int>& luts) {
  std::set<net::SignalId> pins;
  for (int index : luts)
    for (net::SignalId s :
         circuit.luts()[static_cast<std::size_t>(index)].inputs)
      pins.insert(s);
  return {pins.begin(), pins.end()};
}

int shared_inputs(const net::Lut& a, const net::Lut& b) {
  int shared = 0;
  for (net::SignalId s : a.inputs)
    if (std::find(b.inputs.begin(), b.inputs.end(), s) != b.inputs.end())
      ++shared;
  return shared;
}

}  // namespace

ClbPacking pack_clbs(const net::LutCircuit& circuit,
                     const ClbOptions& options) {
  CHORTLE_REQUIRE(options.max_luts >= 1 && options.clb_inputs >= 1 &&
                      options.lut_inputs >= 1,
                  "bad CLB options");
  const auto& luts = circuit.luts();
  const int n = circuit.num_luts();
  for (const net::Lut& lut : luts)
    CHORTLE_REQUIRE(static_cast<int>(lut.inputs.size()) <=
                        options.clb_inputs,
                    "LUT '" + lut.name + "' exceeds the CLB pin count");

  ClbPacking packing;
  packing.num_luts = n;
  std::vector<bool> placed(static_cast<std::size_t>(n), false);

  for (int i = 0; i < n; ++i) {
    if (placed[static_cast<std::size_t>(i)]) continue;
    placed[static_cast<std::size_t>(i)] = true;
    Clb clb;
    clb.lut_indices.push_back(i);

    const bool can_share =
        options.max_luts >= 2 &&
        static_cast<int>(luts[static_cast<std::size_t>(i)].inputs.size()) <=
            options.lut_inputs;
    if (can_share) {
      // VPack-style affinity: among feasible partners prefer the one
      // sharing the most input pins; tie-break toward direct
      // connectivity (the partner reads this LUT's output) and then
      // the smallest pin total.
      int best = -1;
      int best_score = -1;
      for (int j = i + 1; j < n; ++j) {
        if (placed[static_cast<std::size_t>(j)]) continue;
        const net::Lut& candidate = luts[static_cast<std::size_t>(j)];
        if (static_cast<int>(candidate.inputs.size()) > options.lut_inputs)
          continue;
        const std::vector<net::SignalId> pins =
            pin_union(circuit, {i, j});
        if (static_cast<int>(pins.size()) > options.clb_inputs) continue;
        const net::SignalId my_output = circuit.num_inputs() + i;
        const bool connected =
            std::find(candidate.inputs.begin(), candidate.inputs.end(),
                      my_output) != candidate.inputs.end();
        const int score =
            8 * shared_inputs(luts[static_cast<std::size_t>(i)], candidate) +
            4 * (connected ? 1 : 0) +
            (options.clb_inputs - static_cast<int>(pins.size()));
        if (score > best_score) {
          best_score = score;
          best = j;
        }
      }
      if (best >= 0) {
        placed[static_cast<std::size_t>(best)] = true;
        clb.lut_indices.push_back(best);
        ++packing.paired;
      }
    }
    clb.input_signals = pin_union(circuit, clb.lut_indices);
    packing.clbs.push_back(std::move(clb));
  }
  packing.num_clbs = static_cast<int>(packing.clbs.size());
  check_packing(circuit, packing, options);
  return packing;
}

void check_packing(const net::LutCircuit& circuit, const ClbPacking& packing,
                   const ClbOptions& options) {
  std::vector<int> owner(static_cast<std::size_t>(circuit.num_luts()), -1);
  for (std::size_t c = 0; c < packing.clbs.size(); ++c) {
    const Clb& clb = packing.clbs[c];
    CHORTLE_CHECK(!clb.lut_indices.empty() &&
                  static_cast<int>(clb.lut_indices.size()) <=
                      options.max_luts);
    for (int index : clb.lut_indices) {
      CHORTLE_CHECK(index >= 0 && index < circuit.num_luts());
      CHORTLE_CHECK_MSG(owner[static_cast<std::size_t>(index)] == -1,
                        "LUT packed twice");
      owner[static_cast<std::size_t>(index)] = static_cast<int>(c);
    }
    const std::vector<net::SignalId> pins =
        pin_union(circuit, clb.lut_indices);
    CHORTLE_CHECK(pins == clb.input_signals);
    CHORTLE_CHECK_MSG(static_cast<int>(pins.size()) <= options.clb_inputs,
                      "CLB exceeds its input pins");
    if (clb.lut_indices.size() >= 2)
      for (int index : clb.lut_indices)
        CHORTLE_CHECK_MSG(
            static_cast<int>(circuit.luts()[static_cast<std::size_t>(index)]
                                 .inputs.size()) <= options.lut_inputs,
            "shared CLB holds a too-wide function");
  }
  for (int index = 0; index < circuit.num_luts(); ++index)
    CHORTLE_CHECK_MSG(owner[static_cast<std::size_t>(index)] != -1,
                      "LUT left unpacked");
}

}  // namespace chortle::arch
