// Commercial-architecture back end — the last of the paper's §5
// future-work items ("we would also like to extend our algorithm to
// handle commercial FPGA architectures").
//
// The original FPGA the paper cites ([Hsie88], the Xilinx XC2000/3000
// family) does not expose bare K-LUTs: its configurable logic block
// (CLB) has 5 input pins and 2 outputs and implements either one
// function of 5 variables or two functions of up to 4 variables whose
// combined support fits the 5 pins. This module packs a mapped 4-LUT
// circuit into such CLBs: a pairing problem under the shared-pin
// constraint, solved VPack-style (greedy by shared-input affinity with
// a connectivity preference). An intra-pair connection is legal — the
// driver's output leaves the CLB and re-enters through a pin, which
// then counts toward the 5.
#pragma once

#include <vector>

#include "network/lut_circuit.hpp"

namespace chortle::arch {

struct ClbOptions {
  int clb_inputs = 5;   // input pins per CLB
  int max_luts = 2;     // functions per CLB
  int lut_inputs = 4;   // widest function a shared CLB may hold
};

struct Clb {
  std::vector<int> lut_indices;         // indices into LutCircuit::luts()
  std::vector<net::SignalId> input_signals;  // distinct external inputs
};

struct ClbPacking {
  std::vector<Clb> clbs;
  int num_luts = 0;
  int num_clbs = 0;
  int paired = 0;  // CLBs holding two functions
};

/// Packs `circuit` (LUT width <= options.lut_inputs, or a single
/// <=clb_inputs-wide LUT alone in its CLB) into two-output CLBs.
/// Throws InvalidInput if some LUT fits no CLB mode.
ClbPacking pack_clbs(const net::LutCircuit& circuit,
                     const ClbOptions& options = {});

/// Validates a packing against the architecture constraints; throws on
/// violation. Exposed so tests and downstream users can audit packings.
void check_packing(const net::LutCircuit& circuit, const ClbPacking& packing,
                   const ClbOptions& options = {});

}  // namespace chortle::arch
