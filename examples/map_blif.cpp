// map_blif: a command-line technology mapper, the tool a user of the
// original Chortle program would have run.
//
//   map_blif [input.blif] [-k K] [-o output.blif] [--mapper NAME]
//            [--objective NAME] [--portfolio-budget-ms N]
//            [--baseline] [--no-optimize] [--split N] [--stats]
//            [--verilog]
//
// Reads a combinational BLIF model, optimizes it, maps it into K-input
// LUTs with the selected backend (--mapper=help lists every registered
// backend; --baseline is shorthand for --mapper libmap), verifies the
// result, and writes a LUT-level BLIF netlist to stdout or to the -o
// file. --mapper portfolio races every backend under
// --portfolio-budget-ms and returns the best cover by --objective
// (src/portfolio). Without an input path, a built-in demo circuit (the
// alu2 benchmark substitute) is used so the binary runs standalone.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "blif/blif.hpp"
#include "blif/verilog.hpp"
#include "chortle/imapper.hpp"
#include "chortle/mapper.hpp"
#include "mcnc/generators.hpp"
#include "opt/decompose.hpp"
#include "opt/script.hpp"
#include "portfolio/portfolio.hpp"
#include "sim/simulate.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: map_blif [input.blif] [-k K] [-o out.blif] "
               "[--mapper NAME|help] [--objective NAME] "
               "[--portfolio-budget-ms N] [--baseline] [--no-optimize] "
               "[--split N] [--stats] [--verilog]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace chortle;
  std::string input_path;
  std::string output_path;
  int k = 4;
  int split_threshold = 10;
  std::string mapper_name = "chortle";
  std::string objective_name = "luts";
  long long portfolio_budget_ms = -1;
  bool run_optimizer = true;
  bool print_stats = false;
  bool emit_verilog = false;

  // Registration first, so --mapper=help and error messages list the
  // full registry rather than a stale hard-coded set.
  portfolio::ensure_registered();

  const core::IMapper* mapper = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-k" && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--split" && i + 1 < argc) {
      split_threshold = std::atoi(argv[++i]);
    } else if (arg == "--mapper" && i + 1 < argc) {
      mapper_name = argv[++i];
    } else if (arg.rfind("--mapper=", 0) == 0) {
      mapper_name = arg.substr(9);
    } else if (arg == "--objective" && i + 1 < argc) {
      objective_name = argv[++i];
    } else if (arg.rfind("--objective=", 0) == 0) {
      objective_name = arg.substr(12);
    } else if (arg == "--portfolio-budget-ms" && i + 1 < argc) {
      portfolio_budget_ms = std::atoll(argv[++i]);
    } else if (arg.rfind("--portfolio-budget-ms=", 0) == 0) {
      portfolio_budget_ms = std::atoll(arg.c_str() + 22);
    } else if (arg == "--baseline") {
      mapper_name = "libmap";
    } else if (arg == "--no-optimize") {
      run_optimizer = false;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--verilog") {
      emit_verilog = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      input_path = arg;
    } else {
      usage();
      return 2;
    }
  }

  if (mapper_name == "help") {
    std::fprintf(stderr, "map_blif: registered mappers: %s\n",
                 core::mapper_names().c_str());
    return 0;
  }
  mapper = core::find_mapper(mapper_name);
  if (mapper == nullptr) {
    std::fprintf(stderr, "map_blif: unknown mapper '%s' (expected %s)\n",
                 mapper_name.c_str(), core::mapper_names().c_str());
    return 2;
  }
  if (k < mapper->min_k() || k > mapper->max_k()) {
    std::fprintf(stderr, "map_blif: mapper '%s' supports K=%d..%d, got %d\n",
                 mapper->name(), mapper->min_k(), mapper->max_k(), k);
    return 2;
  }

  try {
    blif::BlifModel model;
    if (input_path.empty()) {
      std::fprintf(stderr,
                   "map_blif: no input given; using the built-in alu2 "
                   "demo circuit\n");
      model.name = "alu2";
      model.network = mcnc::generate("alu2");
    } else {
      model = blif::read_blif_file(input_path);
    }
    if (model.num_latches > 0)
      std::fprintf(stderr,
                   "map_blif: %d latches treated as pseudo inputs/outputs\n",
                   model.num_latches);

    net::Network network;
    if (run_optimizer) {
      const opt::OptimizedDesign design = opt::optimize(model.network);
      network = design.network;
      if (print_stats)
        std::fprintf(stderr,
                     "optimize: %d -> %d literals, %d gates, %.3fs\n",
                     model.network.total_literals(), design.stats.literals,
                     network.num_gates(), design.stats.seconds);
    } else {
      network = opt::decompose_to_and_or(model.network);
    }

    core::Options options;
    options.k = k;
    options.split_threshold = split_threshold;
    core::MapResult result = [&] {
      if (mapper_name != "portfolio") return mapper->map(network, options);
      portfolio::PortfolioConfig race =
          portfolio::default_portfolio().config();
      race.objective = portfolio::parse_objective(objective_name);
      race.budget_ms = portfolio_budget_ms;
      return portfolio::default_portfolio().map_with(network, options, race,
                                                     nullptr);
    }();
    const net::LutCircuit& circuit = result.circuit;
    if (print_stats)
      std::fprintf(stderr, "%s: %d LUTs, depth %d, %.3fs\n", mapper->name(),
                   result.stats.num_luts, result.stats.depth,
                   result.stats.seconds);
    if (!result.stats.portfolio_winner.empty())
      std::fprintf(stderr,
                   "portfolio: winner=%s cancelled=%d stitched_trees=%d "
                   "objective=%s\n",
                   result.stats.portfolio_winner.c_str(),
                   result.stats.portfolio_cancelled,
                   result.stats.portfolio_stitched_trees,
                   objective_name.c_str());

    if (!sim::equivalent(sim::design_of(model.network),
                         sim::design_of(circuit))) {
      std::fprintf(stderr, "map_blif: VERIFICATION FAILED\n");
      return 1;
    }
    std::fprintf(stderr, "map_blif: mapped to %d %d-input LUTs (verified)\n",
                 circuit.num_luts(), k);

    const std::string out_name = model.name + "_luts";
    const auto emit = [&](std::ostream& out) {
      if (emit_verilog)
        blif::write_verilog(out, circuit, out_name);
      else
        blif::write_blif(out, circuit, out_name);
    };
    if (output_path.empty()) {
      emit(std::cout);
    } else {
      std::ofstream out(output_path);
      if (!out) {
        std::fprintf(stderr, "map_blif: cannot write %s\n",
                     output_path.c_str());
        return 1;
      }
      emit(out);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "map_blif: %s\n", error.what());
    return 1;
  }
}
