// Quickstart: the smallest complete tour of the library.
//
//   1. describe combinational logic in BLIF (the MCNC format),
//   2. optimize it (sweep + algebraic extraction, the MIS-II-script
//      substitute),
//   3. map it into K-input lookup tables with Chortle,
//   4. verify the mapping and write the LUT netlist back out as BLIF.
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "blif/blif.hpp"
#include "chortle/mapper.hpp"
#include "opt/script.hpp"
#include "sim/simulate.hpp"

int main() {
  using namespace chortle;

  // A full adder plus a small control function.
  const char* source_blif = R"(
.model quickstart
.inputs a b cin sel
.outputs sum cout pick
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.names sel a b pick
01- 1
1-1 1
.end
)";

  // 1. Parse.
  const blif::BlifModel model = blif::read_blif_string(source_blif);
  std::printf("parsed '%s': %zu inputs, %zu outputs, %d literals\n",
              model.name.c_str(), model.network.inputs().size(),
              model.network.outputs().size(),
              model.network.total_literals());

  // 2. Optimize (both mappers in this project consume this form).
  const opt::OptimizedDesign design = opt::optimize(model.network);
  std::printf("optimized: %d AND/OR gates, depth %d, %d literals\n",
              design.network.num_gates(), design.network.depth(),
              design.stats.literals);

  // 3. Map into 4-input LUTs.
  core::Options options;
  options.k = 4;
  const core::MapResult mapped = core::map_network(design.network, options);
  std::printf("Chortle, K=%d: %d LUTs in %d trees, depth %d\n", options.k,
              mapped.stats.num_luts, mapped.stats.num_trees,
              mapped.stats.depth);

  // 4. Verify against the original and print the LUT netlist.
  const bool ok = sim::equivalent(sim::design_of(model.network),
                                  sim::design_of(mapped.circuit));
  std::printf("verification: %s\n\n", ok ? "equivalent" : "MISMATCH");
  std::printf("%s", blif::write_blif_string(mapped.circuit,
                                            "quickstart_luts").c_str());
  return ok ? 0 : 1;
}
