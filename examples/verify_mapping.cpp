// verify_mapping: using the equivalence checker as a safety net.
//
// Demonstrates the verification workflow the test suite and the bench
// harness rely on: map a benchmark, check it against the source,
// then deliberately corrupt one LUT and show that the checker catches
// the bug and produces a concrete counterexample assignment.
#include <cstdio>
#include <optional>

#include "chortle/mapper.hpp"
#include "mcnc/generators.hpp"
#include "opt/script.hpp"
#include "sim/simulate.hpp"

int main() {
  using namespace chortle;
  const sop::SopNetwork source = mcnc::generate("apex7");
  const opt::OptimizedDesign design = opt::optimize(source);
  core::Options options;
  options.k = 4;
  core::MapResult mapped = core::map_network(design.network, options);
  std::printf("mapped apex7 substitute: %d LUTs\n", mapped.stats.num_luts);

  // A healthy mapping verifies clean.
  const auto healthy = sim::find_mismatch(sim::design_of(source),
                                          sim::design_of(mapped.circuit));
  std::printf("healthy circuit: %s\n",
              healthy ? "MISMATCH (bug!)" : "equivalent");

  // Corrupt one LUT: rebuild the circuit with a single truth-table bit
  // flipped and let the checker hunt the difference down. A flipped
  // minterm can be unobservable (masked by downstream logic), so try
  // victims until the checker reports a difference.
  std::optional<sim::Mismatch> mismatch;
  int victims_tried = 0;
  for (int victim = 0; victim < mapped.circuit.num_luts() && !mismatch;
       ++victim) {
    net::LutCircuit corrupted(mapped.circuit.k());
    for (const std::string& name : mapped.circuit.input_names())
      corrupted.add_input(name);
    for (int i = 0; i < mapped.circuit.num_luts(); ++i) {
      net::Lut lut = mapped.circuit.luts()[static_cast<std::size_t>(i)];
      if (i == victim) lut.function.set_bit(0, !lut.function.bit(0));
      corrupted.add_lut(std::move(lut));
    }
    for (const net::LutOutput& o : mapped.circuit.outputs()) {
      if (o.is_const)
        corrupted.add_const_output(o.name, o.const_value);
      else
        corrupted.add_output(o.name, o.signal, o.negated);
    }
    ++victims_tried;
    mismatch = sim::find_mismatch(sim::design_of(source),
                                  sim::design_of(corrupted));
  }
  if (!mismatch) {
    std::printf("corrupted circuit: every injected fault was masked\n");
    return 1;
  }
  std::printf("injected a single-bit fault (victim LUT #%d)\n",
              victims_tried - 1);
  std::printf("corrupted circuit: output '%s' differs; witness:",
              mismatch->output_name.c_str());
  const auto& inputs = sim::design_of(source).input_names;
  int shown = 0;
  for (std::size_t i = 0; i < mismatch->input_values.size() && shown < 8;
       ++i) {
    if (mismatch->input_values[i]) {
      std::printf(" %s=1", inputs[i].c_str());
      ++shown;
    }
  }
  std::printf(" (all other inputs 0-or-shown)\n");
  std::printf("verification demo complete\n");
  return 0;
}
