// arch_explore: the architecture question that motivated the paper.
//
// The paper cites [Rose89] ("The Effect of Logic Block Complexity on
// Area of Programmable Gate Arrays") as the reason to study lookup
// tables: how big should K be? This example sweeps K over a set of
// benchmark circuits and reports, per K, the LUT count, an area
// estimate, and the depth. A K-input LUT costs 2^K memory bits plus
// roughly linear routing/multiplexer overhead; following Rose et al.
// we charge area(K) = 2^K + c*K bits with c = 6, so the sweep exposes
// the classic area sweet spot around K = 3..4 even though larger K
// always needs fewer LUTs.
#include <cstdio>
#include <string>
#include <vector>

#include "chortle/mapper.hpp"
#include "mcnc/generators.hpp"
#include "opt/script.hpp"

int main() {
  using namespace chortle;
  const std::vector<std::string> circuits = {"9symml", "alu2", "apex7",
                                             "count", "frg1", "rot"};
  std::printf("Logic block architecture sweep (cf. [Rose89], paper §1)\n");
  std::printf("area model per LUT: 2^K + 6K \"bit equivalents\"\n\n");
  std::printf("%4s %10s %14s %12s %10s\n", "K", "LUTs", "area (bits)",
              "area/LUT", "max depth");

  std::vector<opt::OptimizedDesign> designs;
  designs.reserve(circuits.size());
  for (const std::string& name : circuits)
    designs.push_back(opt::optimize(mcnc::generate(name)));

  for (int k = 2; k <= 6; ++k) {
    core::Options options;
    options.k = k;
    long total_luts = 0;
    int max_depth = 0;
    for (const auto& design : designs) {
      const core::MapResult result =
          core::map_network(design.network, options);
      total_luts += result.stats.num_luts;
      if (result.stats.depth > max_depth) max_depth = result.stats.depth;
    }
    const long area_per_lut = (1L << k) + 6L * k;
    std::printf("%4d %10ld %14ld %12ld %10d\n", k, total_luts,
                total_luts * area_per_lut, area_per_lut, max_depth);
  }
  std::printf(
      "\nReading: LUT count falls monotonically with K, but area per LUT\n"
      "grows exponentially; total area bottoms out at a small K — the\n"
      "area-efficiency argument for lookup-table FPGAs the paper builds "
      "on.\n");
  return 0;
}
