// fpga_flow: the complete front-to-back flow this repository supports,
// combining the paper's algorithm with every §5 future-work extension
// built here:
//
//   BLIF in -> optimize (sweep/simplify/extract) -> Chortle mapping
//   with cost-driven fanout duplication -> formal (BDD) equivalence
//   proof -> XC3000-style CLB packing -> structural Verilog out.
#include <cstdio>

#include "arch/clb.hpp"
#include "bdd/equiv.hpp"
#include "blif/blif.hpp"
#include "blif/verilog.hpp"
#include "chortle/mapper.hpp"
#include "mcnc/generators.hpp"
#include "opt/script.hpp"

int main() {
  using namespace chortle;

  // Source design: the frg1 benchmark substitute, via BLIF text to
  // exercise the real entry point.
  const std::string source_blif =
      blif::write_blif_string(mcnc::generate("frg1"), "frg1");
  const blif::BlifModel model = blif::read_blif_string(source_blif);
  std::printf("frg1: %zu inputs, %zu outputs, %d literals\n",
              model.network.inputs().size(), model.network.outputs().size(),
              model.network.total_literals());

  // Technology-independent optimization.
  const opt::OptimizedDesign design = opt::optimize(model.network);
  std::printf("optimized: %d literals, %d AND/OR gates (%.3fs)\n",
              design.stats.literals, design.network.num_gates(),
              design.stats.seconds);

  // Chortle with the duplication extension.
  core::Options options;
  options.k = 4;
  options.duplicate_fanout_logic = true;
  const core::MapResult mapped = core::map_network(design.network, options);
  std::printf("mapped: %d 4-input LUTs, depth %d, %d cones duplicated\n",
              mapped.stats.num_luts, mapped.stats.depth,
              mapped.stats.duplicated_roots);

  // Formal proof of equivalence (not just simulation).
  const bdd::FormalOutcome proof =
      bdd::check_equivalence(model.network, mapped.circuit);
  switch (proof.status) {
    case bdd::FormalOutcome::Status::kEquivalent:
      std::printf("formal check: EQUIVALENT (proved by BDD)\n");
      break;
    case bdd::FormalOutcome::Status::kDifferent:
      std::printf("formal check: DIFFERENT at output %s\n",
                  proof.output_name.c_str());
      return 1;
    case bdd::FormalOutcome::Status::kInconclusive:
      std::printf("formal check: inconclusive (%s)\n", proof.note.c_str());
      break;
  }

  // Commercial-architecture packing.
  const arch::ClbPacking packing = arch::pack_clbs(mapped.circuit);
  std::printf("packed: %d LUTs into %d XC3000-style CLBs (%d paired)\n",
              packing.num_luts, packing.num_clbs, packing.paired);

  // Verilog netlist (first lines shown).
  const std::string verilog =
      blif::write_verilog_string(mapped.circuit, "frg1_luts");
  std::printf("\n--- frg1_luts.v (%zu bytes, first lines) ---\n",
              verilog.size());
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const std::size_t next = verilog.find('\n', pos);
    std::printf("%s\n", verilog.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("...\n");
  return proof.status == bdd::FormalOutcome::Status::kDifferent ? 1 : 0;
}
